#include "privedit/extension/mediator.hpp"

#include "privedit/cloud/xml.hpp"
#include "privedit/enc/container.hpp"
#include "privedit/crypto/sha256.hpp"
#include "privedit/delta/delta.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/hex.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::extension {
namespace {

constexpr std::string_view kBespinPrefix = "/file/at/";
constexpr std::string_view kBuzzwordPrefix = "/doc/";

// Must match the hash the clients and the GDocs service compute.
std::string content_hash16(std::string_view content) {
  return hex_encode(crypto::Sha256::hash(as_bytes(content))).substr(0, 16);
}

}  // namespace

GDocsMediator::GDocsMediator(net::Channel* upstream, MediatorConfig config,
                             net::SimClock* clock)
    : upstream_(upstream), config_(std::move(config)), clock_(clock) {
  if (upstream_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "GDocsMediator: null upstream");
  }
  mitigation_rng_ = config_.rng_factory();
}

net::HttpResponse GDocsMediator::blocked(const std::string& why) {
  ++counters_.requests_blocked;
  return net::HttpResponse::make(
      403, "blocked by private-editing extension: " + why);
}

void GDocsMediator::blank_ack_fields(net::HttpResponse& response) {
  FormData body = FormData::parse(response.body);
  bool touched = false;
  if (body.contains("contentFromServer")) {
    body.set("contentFromServer", "");
    touched = true;
  }
  if (body.contains("contentFromServerHash")) {
    body.set("contentFromServerHash", "0");
    touched = true;
  }
  if (touched) {
    response.body = body.encode();
    ++counters_.acks_blanked;
  }
}

void GDocsMediator::apply_outgoing_mitigations(std::string& form_body) {
  if (config_.pad_bucket > 0) {
    // Quantise the body length: every message becomes a multiple of the
    // bucket, so length leaks at bucket granularity only.
    const std::size_t base = form_body.size() + 5;  // "&pad="
    const std::size_t target =
        (base + config_.pad_bucket - 1) / config_.pad_bucket *
        config_.pad_bucket;
    form_body += "&pad=";
    form_body.append(target - base, 'x');
  }
  if (config_.random_delay_us > 0 && clock_ != nullptr) {
    clock_->advance_us(mitigation_rng_->below(config_.random_delay_us + 1));
  }
}

net::HttpResponse GDocsMediator::round_trip(const net::HttpRequest& request) {
  if (request.method != "POST" || request.path() != "/Doc") {
    return blocked("unknown endpoint");
  }
  const auto doc_id_opt = request.query_param("docID");
  if (!doc_id_opt) {
    return blocked("missing docID");
  }
  const std::string doc_id = *doc_id_opt;
  FormData form = FormData::parse(request.body);
  const auto cmd = form.get("cmd");
  const bool unmanaged = unmanaged_.count(doc_id) > 0;

  if (cmd == "create") {
    net::HttpResponse resp = upstream_->round_trip(request);
    if (resp.ok()) {
      unmanaged_.erase(doc_id);
      sessions_.erase(doc_id);
      sessions_.emplace(doc_id,
                        DocumentSession::create_new(config_.password,
                                                    config_.scheme,
                                                    config_.rng_factory));
    }
    return resp;
  }

  if (cmd == "open") {
    net::HttpResponse resp = upstream_->round_trip(request);
    if (!resp.ok()) return resp;
    FormData reply = FormData::parse(resp.body);
    const std::string content = reply.get("content").value_or("");
    if (content.empty()) {
      // Empty document — start a fresh encrypted session for it.
      sessions_.erase(doc_id);
      sessions_.emplace(doc_id,
                        DocumentSession::create_new(config_.password,
                                                    config_.scheme,
                                                    config_.rng_factory));
      return resp;
    }
    try {
      DocumentSession session = DocumentSession::open(
          config_.password, content, config_.rng_factory);
      reply.set("content", session.plaintext());
      sessions_.erase(doc_id);
      sessions_.emplace(doc_id, std::move(session));
      unmanaged_.erase(doc_id);
      resp.body = reply.encode();
      ++counters_.opens_decrypted;
      return resp;
    } catch (const ParseError&) {
      // Unparseable content is either a legacy plaintext document (pass
      // through, stop mediating) or a *corrupted* container. If we already
      // hold a session for this document, or the bytes still carry the
      // container magic, it is corruption — in transit or at the provider
      // — and must fail loudly rather than reach the client as "text".
      if (sessions_.count(doc_id) != 0 || enc::looks_like_container(content)) {
        throw IntegrityError(
            "open: ciphertext container corrupted for document '" + doc_id +
            "'");
      }
      unmanaged_.insert(doc_id);
      ++counters_.passthrough_unmanaged;
      return resp;
    }
    // CryptoError (wrong password) and IntegrityError (tampering)
    // propagate to the caller: the user must know.
  }

  if (unmanaged) {
    ++counters_.passthrough_unmanaged;
    return upstream_->round_trip(request);
  }

  auto session_it = sessions_.find(doc_id);
  if (session_it == sessions_.end()) {
    return blocked("document has no active encrypted session");
  }
  DocumentSession& session = session_it->second;

  if (const auto contents = form.get("docContents")) {
    form.set("docContents", session.encrypt_full(*contents));
    std::string body = form.encode();
    apply_outgoing_mitigations(body);
    net::HttpResponse resp = upstream_->round_trip(
        net::HttpRequest::post_form(request.target, std::move(body)));
    ++counters_.full_saves_encrypted;
    blank_ack_fields(resp);
    return resp;
  }

  if (const auto delta_wire = form.get("delta")) {
    delta::Delta pdelta = delta::Delta::parse(*delta_wire);
    if (config_.rediff) {
      // Don't trust the client's op sequence: recompute a minimal delta
      // between the two document versions (§VI-B countermeasure).
      const std::string before = session.plaintext();
      const std::string after = pdelta.apply(before);
      pdelta = delta::myers_diff(before, after);
    }

    // Collaborative rebase loop: on a strict-revision 409, adopt the
    // server's (decrypted) state, transform our edit over the concurrent
    // one, and retry with the fresh revision.
    std::string base = session.plaintext();
    delta::Delta working = std::move(pdelta);
    bool rebased = false;
    net::HttpResponse resp;
    for (int attempt = 0;; ++attempt) {
      DocumentSession& live = sessions_.find(doc_id)->second;
      const delta::Delta cdelta = live.transform_delta(working);
      form.set("delta", cdelta.to_wire());
      std::string body = form.encode();
      apply_outgoing_mitigations(body);
      resp = upstream_->round_trip(
          net::HttpRequest::post_form(request.target, std::move(body)));
      if (resp.status != 409 || !config_.collaborative ||
          attempt >= config_.max_rebase_retries) {
        break;
      }
      const FormData ack = FormData::parse(resp.body);
      const auto server_cipher = ack.get("contentFromServer");
      const auto server_rev = ack.get("rev");
      if (!server_cipher || !server_rev) break;

      DocumentSession fresh = DocumentSession::open(
          config_.password, *server_cipher, config_.rng_factory);
      const std::string server_plain = fresh.plaintext();
      // The other writers' net effect relative to our base, and our edit
      // transformed to apply after it (they committed first, they win
      // insert ties).
      const delta::Delta theirs = delta::myers_diff(base, server_plain);
      working = delta::Delta::transform(working, theirs, /*a_wins=*/false);
      sessions_.erase(doc_id);
      sessions_.emplace(doc_id, std::move(fresh));
      base = server_plain;
      form.set("rev", *server_rev);
      rebased = true;
      ++counters_.rebases;
    }
    ++counters_.deltas_transformed;

    if (resp.ok() && rebased) {
      // Tell the client about the merged state in terms it can verify:
      // plaintext content plus a matching hash. It adopts both.
      const std::string merged =
          sessions_.find(doc_id)->second.plaintext();
      FormData ack = FormData::parse(resp.body);
      ack.set("contentFromServer", merged);
      ack.set("contentFromServerHash", content_hash16(merged));
      resp.body = ack.encode();
      return resp;
    }
    blank_ack_fields(resp);
    return resp;
  }

  // Anything else (spellcheck, export, future surprises) would carry or
  // fetch plaintext — drop it (Fig 2: "drop all unknown requests").
  return blocked("unrecognised request for encrypted document");
}

std::optional<std::string> GDocsMediator::managed_plaintext(
    const std::string& doc_id) const {
  const auto it = sessions_.find(doc_id);
  if (it == sessions_.end()) return std::nullopt;
  return it->second.plaintext();
}

std::optional<enc::SchemeStats> GDocsMediator::managed_stats(
    const std::string& doc_id) const {
  const auto it = sessions_.find(doc_id);
  if (it == sessions_.end()) return std::nullopt;
  return it->second.scheme().stats();
}

// --------------------------------------------------------------- Bespin

BespinMediator::BespinMediator(net::Channel* upstream, MediatorConfig config)
    : upstream_(upstream), config_(std::move(config)) {
  if (upstream_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "BespinMediator: null upstream");
  }
}

net::HttpResponse BespinMediator::round_trip(const net::HttpRequest& request) {
  const std::string path = request.path();
  if (path.rfind(kBespinPrefix, 0) != 0) {
    ++blocked_;
    return net::HttpResponse::make(
        403, "blocked by private-editing extension: unknown endpoint");
  }
  const std::string file = path.substr(kBespinPrefix.size());

  if (request.method == "PUT") {
    auto it = sessions_.find(file);
    if (it == sessions_.end()) {
      it = sessions_
               .emplace(file, DocumentSession::create_new(
                                  config_.password, config_.scheme,
                                  config_.rng_factory))
               .first;
    }
    net::HttpRequest encrypted = request;
    encrypted.body = it->second.encrypt_full(request.body);
    return upstream_->round_trip(encrypted);
  }

  if (request.method == "GET") {
    net::HttpResponse resp = upstream_->round_trip(request);
    if (!resp.ok() || resp.body.empty()) return resp;
    DocumentSession session = DocumentSession::open(
        config_.password, resp.body, config_.rng_factory);
    resp.body = session.plaintext();
    sessions_.erase(file);
    sessions_.emplace(file, std::move(session));
    return resp;
  }

  ++blocked_;
  return net::HttpResponse::make(
      403, "blocked by private-editing extension: unsupported method");
}

// ------------------------------------------------------------- Buzzword

BuzzwordMediator::BuzzwordMediator(net::Channel* upstream,
                                   MediatorConfig config)
    : upstream_(upstream), config_(std::move(config)) {
  if (upstream_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "BuzzwordMediator: null upstream");
  }
}

net::HttpResponse BuzzwordMediator::round_trip(
    const net::HttpRequest& request) {
  const std::string path = request.path();
  if (path.rfind(kBuzzwordPrefix, 0) != 0) {
    ++blocked_;
    return net::HttpResponse::make(
        403, "blocked by private-editing extension: unknown endpoint");
  }

  if (request.method == "POST") {
    // Encrypt the text embedded in <textRun> tags (§III); every run is an
    // independent ciphertext container under the same password.
    net::HttpRequest encrypted = request;
    encrypted.body = cloud::rewrite_text_runs(
        request.body, [this](const std::string& text) {
          DocumentSession session = DocumentSession::create_new(
              config_.password, config_.scheme, config_.rng_factory);
          return session.encrypt_full(text);
        });
    return upstream_->round_trip(encrypted);
  }

  if (request.method == "GET") {
    net::HttpResponse resp = upstream_->round_trip(request);
    if (!resp.ok()) return resp;
    resp.body = cloud::rewrite_text_runs(
        resp.body, [this](const std::string& text) {
          if (text.empty()) return text;
          DocumentSession session = DocumentSession::open(
              config_.password, text, config_.rng_factory);
          return session.plaintext();
        });
    return resp;
  }

  ++blocked_;
  return net::HttpResponse::make(
      403, "blocked by private-editing extension: unsupported method");
}

}  // namespace privedit::extension
