#pragma once
// DocumentAuditor — the client-side fork-consistency state machine.
//
// enc/audit_record defines the records and MAC math; this class owns the
// policy: what the client commits, when, and how a served history is
// classified. Per managed document the auditor tracks
//
//   * the committed chain head (rev, H) — advanced only through verified
//     chains or acknowledged own saves;
//   * a window of recent (rev, head) pairs, the evidence base for judging
//     peer witnesses;
//   * at most one *staged* link: the link for an in-flight save, durably
//     logged BEFORE the save is sent (same write-ahead discipline as the
//     edit journal) so a crash between send and ack cannot lose the head.
//
// Verdict taxonomy, matching the error types in util/error.hpp:
//   kRollback     — the served chain ends before our committed head: the
//                   server is replaying an old-but-genuine state.
//   kFork         — the served history diverges from (or cannot be linked
//                   to) the head this client committed: substituted or
//                   unverifiable history.
//   kEquivocation — a peer's MACed witness conflicts with a history the
//                   server showed us: proof the server maintains divergent
//                   histories for different clients.
//
// Durability: an optional append-only log (`<doc>.achain`, PEWJ-style
// framing with magic "PEAC") records COMMIT/STAGE/DROP transitions with
// fsync'd appends and torn-tail truncation on load, and is exercised by
// the same crash-at-seam machinery as the journal ("audit.append.*").

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "privedit/enc/audit_record.hpp"
#include "privedit/util/bytes.hpp"

namespace privedit::extension {

enum class AuditVerdict { kOk, kRollback, kFork, kEquivocation };

std::string_view audit_verdict_name(AuditVerdict verdict);

class DocumentAuditor {
 public:
  /// `log_path` empty → memory-only (no crash durability). Otherwise the
  /// log is opened (created if absent) and replayed; a torn tail is
  /// truncated off.
  DocumentAuditor(Bytes audit_key, std::string doc_id, std::string client_id,
                  std::string log_path = {});
  ~DocumentAuditor();

  DocumentAuditor(const DocumentAuditor&) = delete;
  DocumentAuditor& operator=(const DocumentAuditor&) = delete;

  /// True once a committed head exists (reset() ran or the log replayed).
  bool initialized() const { return !committed_head_.empty(); }

  /// Re-baselines at the genesis head for revision `rev` (document
  /// created or re-created). Durable; discards any staged link.
  void reset(std::uint64_t rev);

  /// Adopts an externally verified (rev, head) pair as the committed
  /// state — used when joining a document whose chain was already
  /// verified. Durable.
  void adopt(std::uint64_t rev, ByteView head);

  std::uint64_t committed_rev() const { return committed_rev_; }
  const Bytes& committed_head() const { return committed_head_; }

  /// Computes and durably stages the chain link for a save expected to
  /// land at `rev` (revisions advance by one, so callers pass
  /// committed_rev()+1) binding `crc`, the CRC-32 of the container being
  /// sent. Must be called BEFORE the save goes on the wire. Replaces any
  /// previously staged link.
  enc::AuditLink stage_link(std::uint64_t rev, std::uint32_t crc);

  /// The staged save was acknowledged: its link becomes the committed
  /// head. Durable.
  void commit_staged();

  /// The staged save was cleanly rejected (or superseded): forget it.
  /// Durable. No-op when nothing is staged.
  void drop_staged();

  bool has_staged() const { return staged_.has_value(); }
  const std::optional<enc::AuditLink>& staged() const { return staged_; }

  struct Verification {
    AuditVerdict verdict = AuditVerdict::kOk;
    std::string detail;             // human-readable cause (error message)
    bool staged_resolved = false;   // a staged link was decided either way
    bool staged_landed = false;     // ... and it had in fact been applied
  };

  /// Judges the chain the server served alongside a document at
  /// (`served_rev`, `served_crc` = CRC-32 of the served container).
  /// Resolves a staged link if the chain covers (or excludes) it —
  /// the audit equivalent of the journal's CAS replay. On kOk the
  /// committed head fast-forwards to the chain tip (peer links included;
  /// they verified under the shared key, so they are genuine client
  /// writes) and outstanding peer claims are cross-checked.
  Verification verify_served(const enc::AuditChain& chain,
                             std::uint64_t served_rev,
                             std::uint32_t served_crc);

  /// Judges one witness record fetched through the server. A witness
  /// whose MAC fails is *ignored* (returns kOk with a detail; the server
  /// can always inject garbage — only a valid MAC proves anything).
  /// A valid peer witness that conflicts with our own window is
  /// equivocation; one ahead of our head is remembered and checked
  /// against the next verified chain.
  Verification check_witness(const enc::AuditWitness& witness);

  /// Witness record for our committed head, for publishing.
  enc::AuditWitness own_witness() const;

  /// Records that own_witness() for the current committed rev was
  /// successfully stored at the server.
  void note_witness_published() { published_rev_ = committed_rev_; }

  /// Revision of the last witness we know the server accepted.
  const std::optional<std::uint64_t>& published_rev() const {
    return published_rev_;
  }

  /// True when the server's witness set omits (or serves stale) our own
  /// witness even though we published one — selective suppression.
  bool witness_suppressed(
      const std::optional<enc::AuditWitness>& own_served) const;

  /// Head recorded at `rev`, if still in the evidence window.
  std::optional<Bytes> head_at(std::uint64_t rev) const;

  const Bytes& key() const { return key_; }
  const std::string& client_id() const { return client_id_; }

  /// True when load found (and truncated) a torn tail record.
  bool recovered_torn_tail() const { return recovered_torn_tail_; }

 private:
  void load();
  void append_frame(const std::string& payload);
  void log_commit(std::uint64_t rev, const Bytes& head);
  void remember(std::uint64_t rev, const Bytes& head);

  Bytes key_;
  std::string doc_id_;
  std::string client_id_;
  std::string log_path_;
  int fd_ = -1;

  std::uint64_t committed_rev_ = 0;
  Bytes committed_head_;                  // empty until initialized
  std::optional<enc::AuditLink> staged_;
  std::map<std::uint64_t, Bytes> window_;  // rev → head evidence (capped)
  std::map<std::string, enc::AuditWitness> peer_claims_;  // ahead of us
  std::optional<std::uint64_t> published_rev_;
  bool recovered_torn_tail_ = false;
};

}  // namespace privedit::extension
