#pragma once
// Thin RAII layer over POSIX TCP sockets (IPv4 loopback-oriented).
//
// §III lists three ways to interpose on client/server traffic; option 1 is
// "a standalone proxy … the most general approach, which could work for
// even non-browser applications". This substrate makes that option real:
// the simulated services can be served over actual sockets and the
// mediator can run as a genuine HTTP proxy (extension/proxy.hpp).

#include <cstdint>
#include <string>
#include <string_view>

#include "privedit/util/bytes.hpp"
#include "privedit/util/error.hpp"

namespace privedit::net {

/// What kind of transport-level failure occurred. Retry policies branch on
/// this: a refused connect never delivered the request (always safe to
/// retry); a truncated read may have — callers decide per endpoint.
enum class FaultKind {
  kConnect,    // connect() failed — request never left this host
  kTimeout,    // read deadline expired (SO_RCVTIMEO or request deadline)
  kReset,      // peer reset / broken pipe mid-stream
  kTruncated,  // orderly EOF in the middle of a framed message
  kOther,      // everything else (socket(), setsockopt(), ...)
};

std::string_view fault_kind_name(FaultKind kind);

/// ProtocolError carrying the failure classification. Everything the
/// socket layer throws is a TransportError, so existing catch sites for
/// ProtocolError keep working while retry logic can inspect the kind.
class TransportError : public ProtocolError {
 public:
  TransportError(FaultKind kind, const std::string& what)
      : ProtocolError(std::string(fault_kind_name(kind)) + ": " + what),
        kind_(kind) {}

  FaultKind kind() const noexcept { return kind_; }

 private:
  FaultKind kind_;
};

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd();

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

/// Connected TCP stream with blocking reads/writes and a receive timeout.
class TcpStream {
 public:
  explicit TcpStream(Fd fd) : fd_(std::move(fd)) {}

  /// Connects to 127.0.0.1:port. Throws ProtocolError on failure.
  static TcpStream connect(std::uint16_t port);

  /// Writes the whole buffer; throws ProtocolError on error/EPIPE.
  void write_all(std::string_view data);

  /// Reads up to `max` bytes; returns empty string on orderly EOF.
  std::string read_some(std::size_t max = 16 * 1024);

  /// Sets SO_RCVTIMEO. 0 disables the timeout.
  void set_read_timeout_ms(int ms);

  int fd() const { return fd_.get(); }

 private:
  Fd fd_;
};

/// Listening socket bound to 127.0.0.1. Port 0 picks an ephemeral port.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);

  /// The actually-bound port (useful with port 0).
  std::uint16_t port() const { return port_; }

  /// Blocks until a client connects; throws ProtocolError if the listener
  /// was shut down.
  TcpStream accept();

  /// Unblocks accept() calls and closes the socket.
  void shutdown();

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

}  // namespace privedit::net
