#pragma once
// Server-side admission control: per-client token buckets and deadline-aware
// queueing.
//
// When every mediator retries aggressively, the server's worker pool is the
// shared resource that melts first. Admission control converts that
// meltdown into explicit backpressure: a client over its rate budget gets
// an immediate 503 with Retry-After (which RetryPolicy honors), instead of
// a request that parks in the accept queue until its sender has long since
// given up.
//
// Two mechanisms, both cheap enough for the request hot path:
//
//   * TokenBucket per client (keyed on the X-Privedit-Client header, with
//     an "anonymous" shared bucket for unlabeled traffic): capacity burst_
//     tokens, refilled at rate_per_sec. A request costs one token; an empty
//     bucket yields 503 + Retry-After rounded up to the time the next token
//     arrives.
//   * Queue deadline: the server stamps each request's arrival; if it waited
//     longer than queue_deadline_us before a worker picked it up, the server
//     answers 503 instead of doing work nobody is waiting for.
//
// Probe requests (kProbeHeader) bypass the bucket: they are the breaker's
// single per-cool-down liveness check, and rejecting them would keep a
// recovered server looking dead.
//
// AdmissionController is thread-safe; HttpServer calls it from every worker.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "privedit/net/http.hpp"
#include "privedit/net/transport.hpp"

namespace privedit::net {

/// Header carrying the client identity admission control keys on.
inline constexpr const char* kClientIdHeader = "X-Privedit-Client";

struct AdmissionConfig {
  double rate_per_sec = 50.0;   // sustained tokens per client per second
  double burst = 10.0;          // bucket capacity (initial + max tokens)
  std::uint64_t queue_deadline_us = 0;  // 0 = no queue deadline
  std::size_t max_clients = 1024;       // bucket table cap (LRU-free: reject)
};

class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst, std::uint64_t now_us)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst), last_us_(now_us) {}

  /// Takes one token if available. On refusal returns the microseconds
  /// until one token will have accrued (the Retry-After hint).
  std::optional<std::uint64_t> try_take(std::uint64_t now_us);

  double tokens(std::uint64_t now_us);

 private:
  void refill(std::uint64_t now_us);

  double rate_;
  double burst_;
  double tokens_;
  std::uint64_t last_us_;
};

class AdmissionController {
 public:
  AdmissionController(AdmissionConfig config,
                      std::function<std::uint64_t()> now_us);

  /// Called with a freshly parsed request (arrival_us = when it was read
  /// off the wire). Returns nullopt to admit, or the 503 response to send.
  std::optional<HttpResponse> admit(const HttpRequest& request,
                                    std::uint64_t arrival_us);

  /// Same bucket machinery keyed on an explicit string — the shard router
  /// uses this to meter per-tenant budgets without a fabricated request.
  /// No probe bypass and no queue deadline: just the token bucket.
  std::optional<HttpResponse> admit_key(const std::string& key,
                                        std::uint64_t now_us);

  struct Counters {
    std::size_t admitted = 0;
    std::size_t rate_limited = 0;    // 503: bucket empty
    std::size_t deadline_expired = 0;  // 503: waited too long in queue
  };
  Counters counters() const;

  const AdmissionConfig& config() const { return config_; }

 private:
  std::optional<HttpResponse> admit_locked(std::string key,
                                           std::uint64_t now);

  AdmissionConfig config_;
  std::function<std::uint64_t()> now_us_;
  mutable std::mutex mu_;
  std::map<std::string, TokenBucket> buckets_;
  Counters counters_;
};

/// Builds the 503 admission response: Retry-After in whole seconds
/// (rounded up, minimum 1) plus a plain-text reason body.
HttpResponse overloaded_response(std::uint64_t wait_us,
                                 const std::string& reason);

}  // namespace privedit::net
