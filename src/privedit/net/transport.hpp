#pragma once
// Transport abstractions: the client (or the mediator on its behalf) sends
// an HttpRequest down a Channel and gets an HttpResponse back.
//
// LoopbackTransport is the simulated network: it serialises both messages
// through the real HTTP codec (so framing bugs can't hide), charges a
// LatencyModel for the round trip on a simulated clock, and keeps wire
// statistics plus an optional tap of raw bytes — the eavesdropper's view,
// which the security tests grep for plaintext leaks.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "privedit/net/http.hpp"
#include "privedit/util/random.hpp"

namespace privedit::net {

/// Server-side request handler.
using Handler = std::function<HttpResponse(const HttpRequest&)>;

/// Simulated wall clock, microsecond resolution. All network and server
/// costs are charged here so experiments are deterministic and fast.
class SimClock {
 public:
  std::uint64_t now_us() const { return now_us_; }
  void advance_us(std::uint64_t us) { now_us_ += us; }

 private:
  std::uint64_t now_us_ = 0;
};

/// Round-trip latency: fixed propagation + uniform jitter + size-dependent
/// transfer time. Defaults are calibrated to a 2009-era home broadband
/// connection against a busy service (the paper's measurement setting):
/// ~150 ms request round trip, ~1.2 Mbit/s up, ~7 Mbit/s down.
struct LatencyModel {
  std::uint64_t base_us = 150'000;       // propagation + request handling
  std::uint64_t jitter_us = 50'000;      // uniform [0, jitter]
  std::uint64_t bytes_per_ms_up = 150;   // upstream throughput (bytes/ms)
  std::uint64_t bytes_per_ms_down = 900; // downstream throughput
  std::uint64_t server_us_per_kb = 100;  // server processing per KiB handled

  std::uint64_t round_trip_us(std::size_t up_bytes, std::size_t down_bytes,
                              RandomSource& rng) const;
};

struct WireStats {
  std::size_t requests = 0;
  std::size_t bytes_up = 0;
  std::size_t bytes_down = 0;
};

class Channel {
 public:
  virtual ~Channel() = default;
  virtual HttpResponse round_trip(const HttpRequest& request) = 0;
};

class LoopbackTransport final : public Channel {
 public:
  LoopbackTransport(Handler server, SimClock* clock, LatencyModel latency,
                    std::unique_ptr<RandomSource> rng);

  HttpResponse round_trip(const HttpRequest& request) override;

  const WireStats& stats() const { return stats_; }
  void reset_stats() { stats_ = WireStats{}; }

  /// When enabled, keeps the raw serialized bytes of every message —
  /// exactly what a network eavesdropper (or the untrusted provider's
  /// front end) sees.
  void enable_tap(bool on) { tap_enabled_ = on; }
  const std::vector<std::string>& tap() const { return tap_; }
  void clear_tap() { tap_.clear(); }

 private:
  Handler server_;
  SimClock* clock_;
  LatencyModel latency_;
  std::unique_ptr<RandomSource> rng_;
  WireStats stats_;
  bool tap_enabled_ = false;
  std::vector<std::string> tap_;
};

}  // namespace privedit::net
