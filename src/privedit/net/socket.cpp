#include "privedit/net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "privedit/util/error.hpp"

namespace privedit::net {
namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              FaultKind kind = FaultKind::kOther) {
  throw TransportError(kind, what + ": " + std::strerror(errno));
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kConnect:
      return "connect-refused";
    case FaultKind::kTimeout:
      return "timeout";
    case FaultKind::kReset:
      return "peer-reset";
    case FaultKind::kTruncated:
      return "truncated";
    case FaultKind::kOther:
      return "net";
  }
  return "net";
}

Fd::~Fd() { reset(); }

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpStream TcpStream::connect(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  const sockaddr_in addr = loopback(port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    throw_errno("connect to 127.0.0.1:" + std::to_string(port),
                FaultKind::kConnect);
  }
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(std::move(fd));
}

void TcpStream::write_all(std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_.get(), data.data() + sent,
                             data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        throw_errno("send", FaultKind::kReset);
      }
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string TcpStream::read_some(std::size_t max) {
  std::string buf(max, '\0');
  while (true) {
    const ssize_t n = ::recv(fd_.get(), buf.data(), buf.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw_errno("recv", FaultKind::kTimeout);
      }
      if (errno == ECONNRESET) {
        throw_errno("recv", FaultKind::kReset);
      }
      throw_errno("recv");
    }
    buf.resize(static_cast<std::size_t>(n));
    return buf;
  }
}

void TcpStream::set_read_timeout_ms(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) !=
      0) {
    throw_errno("setsockopt(SO_RCVTIMEO)");
  }
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = Fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd_.valid()) throw_errno("socket");
  int one = 1;
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback(port);
  if (::bind(fd_.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd_.get(), 64) != 0) throw_errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpStream TcpListener::accept() {
  const int client = ::accept(fd_.get(), nullptr, nullptr);
  if (client < 0) {
    throw ProtocolError("accept: listener closed or failed");
  }
  int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(Fd(client));
}

void TcpListener::shutdown() {
  // Only ::shutdown(), never close: this is called from stop() while the
  // accept thread may be blocked inside ::accept() on the same fd.
  // shutdown() wakes that accept (it fails with EINVAL); closing here
  // would race the concurrent fd_ read and could hand a recycled
  // descriptor to the accept call. The fd is closed by the destructor,
  // after the accept thread has been joined.
  if (fd_.valid()) {
    ::shutdown(fd_.get(), SHUT_RDWR);
  }
}

}  // namespace privedit::net
