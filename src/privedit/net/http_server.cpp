#include "privedit/net/http_server.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <thread>

#include "privedit/net/breaker.hpp"  // now_steady_us
#include "privedit/util/error.hpp"

namespace privedit::net {
namespace {

/// Strict Content-Length value parse: optional surrounding OWS, digits
/// only, no trailing garbage ("123abc" is an attack, not a number).
std::size_t parse_content_length(std::string_view value) {
  while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
    value.remove_prefix(1);
  }
  while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
    value.remove_suffix(1);
  }
  std::size_t n = 0;
  const auto* b = value.data();
  const auto* e = b + value.size();
  auto [p, ec] = std::from_chars(b, e, n);
  if (ec != std::errc() || p != e || value.empty()) {
    throw ParseError("http: bad Content-Length on stream");
  }
  return n;
}

}  // namespace

std::string read_http_message(TcpStream& stream, std::size_t max_bytes,
                              int deadline_ms) {
  std::string buf;
  std::size_t body_needed = SIZE_MAX;  // unknown until headers parsed
  std::size_t head_end = std::string::npos;
  const auto start = std::chrono::steady_clock::now();

  while (true) {
    if (head_end == std::string::npos) {
      head_end = buf.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        // Parse Content-Length out of the raw head (case-insensitive).
        body_needed = 0;
        bool seen = false;
        std::size_t pos = 0;
        while (pos < head_end) {
          std::size_t eol = buf.find("\r\n", pos);
          if (eol == std::string::npos || eol > head_end) eol = head_end;
          const std::string_view line =
              std::string_view(buf).substr(pos, eol - pos);
          constexpr std::string_view kName = "content-length:";
          if (line.size() > kName.size()) {
            bool match = true;
            for (std::size_t i = 0; i < kName.size(); ++i) {
              if (std::tolower(static_cast<unsigned char>(line[i])) !=
                  kName[i]) {
                match = false;
                break;
              }
            }
            if (match) {
              const std::size_t n =
                  parse_content_length(line.substr(kName.size()));
              if (seen && n != body_needed) {
                throw ParseError(
                    "http: conflicting duplicate Content-Length headers");
              }
              seen = true;
              body_needed = n;
            }
          }
          pos = eol + 2;
        }
      }
    }
    if (head_end != std::string::npos) {
      const std::size_t total = head_end + 4 + body_needed;
      if (total > max_bytes) {
        throw ProtocolError("http: message exceeds size limit");
      }
      if (buf.size() >= total) {
        buf.resize(total);
        return buf;
      }
    }
    if (buf.size() > max_bytes) {
      throw ProtocolError("http: message exceeds size limit");
    }
    if (deadline_ms > 0) {
      // The whole message must arrive within the deadline — a client
      // dripping one byte per SO_RCVTIMEO window cannot hold a worker
      // hostage indefinitely.
      const auto elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      const auto remaining = deadline_ms - static_cast<int>(elapsed_ms);
      if (remaining <= 0) {
        throw TransportError(FaultKind::kTimeout,
                             "http: request deadline expired");
      }
      stream.set_read_timeout_ms(remaining);
    }
    const std::string chunk = stream.read_some();
    if (chunk.empty()) {
      throw TransportError(FaultKind::kTruncated,
                           "http: connection closed mid-message");
    }
    buf += chunk;
  }
}

HttpServer::HttpServer(std::uint16_t port, Handler handler,
                       HttpServerConfig config)
    : listener_(port), handler_(std::move(handler)), config_(config) {
  if (!handler_) {
    throw Error(ErrorCode::kInvalidArgument, "HttpServer: null handler");
  }
  if (config_.worker_threads == 0 || config_.accept_queue_capacity == 0) {
    throw Error(ErrorCode::kInvalidArgument,
                "HttpServer: need >= 1 worker and >= 1 queue slot");
  }
  if (config_.admission) {
    admission_ =
        std::make_unique<AdmissionController>(*config_.admission,
                                              now_steady_us);
  }
  workers_.reserve(config_.worker_threads);
  for (std::size_t i = 0; i < config_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  if (stopping_.exchange(true)) return;
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Empty critical section: a worker that read stopping_==false cannot
    // miss the wakeup — it is either already waiting or has not yet
    // locked the mutex and will re-check the predicate.
    const std::lock_guard<std::mutex> lock(queue_mutex_);
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

HttpServer::Counters HttpServer::counters() const {
  Counters c;
  c.served = served_.load();
  c.write_failures = write_failures_.load();
  c.rejected_busy = rejected_busy_.load();
  c.dropped = dropped_.load();
  c.rejected_admission = rejected_admission_.load();
  return c;
}

std::size_t HttpServer::backlog() const {
  std::size_t queued;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    queued = queue_.size();
  }
  return queued + in_flight_.load();
}

void HttpServer::accept_loop() {
  while (!stopping_.load()) {
    TcpStream stream = [this]() -> TcpStream {
      try {
        return listener_.accept();
      } catch (const ProtocolError&) {
        return TcpStream(Fd{});
      }
    }();
    if (stream.fd() < 0) {
      if (stopping_.load()) return;
      continue;
    }
    bool enqueued = false;
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.size() < config_.accept_queue_capacity) {
        queue_.push_back(Accepted{std::move(stream), now_steady_us()});
        enqueued = true;
      }
    }
    if (enqueued) {
      queue_cv_.notify_one();
    } else {
      ++rejected_busy_;
      reject_busy(std::move(stream));
    }
  }
}

void HttpServer::reject_busy(TcpStream stream) {
  // Shed load fast: the accept loop writes the 503 itself rather than
  // waiting for a worker — that is the whole point of the bounded queue.
  try {
    HttpResponse busy = HttpResponse::make(503, "server busy, retry later");
    busy.headers.set("Connection", "close");
    busy.headers.set("Retry-After", "1");
    stream.write_all(busy.serialize());
  } catch (const std::exception&) {
    // Peer already gone; nothing to shed.
  }
}

void HttpServer::worker_loop() {
  while (true) {
    Accepted accepted{TcpStream{Fd{}}, 0};
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load() || !queue_.empty();
      });
      if (queue_.empty()) {
        // stopping_ and the queue is drained — graceful exit.
        return;
      }
      accepted = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    serve(std::move(accepted));
    --in_flight_;
  }
}

void HttpServer::serve(Accepted accepted) {
  TcpStream stream = std::move(accepted.stream);
  try {
    stream.set_read_timeout_ms(config_.request_deadline_ms);
    const std::string wire = read_http_message(
        stream, config_.max_message_bytes, config_.request_deadline_ms);
    const HttpRequest request = HttpRequest::parse(wire);
    HttpResponse response;
    std::optional<HttpResponse> refusal;
    if (admission_) refusal = admission_->admit(request, accepted.arrival_us);
    if (refusal) {
      ++rejected_admission_;
      response = *refusal;
    } else {
      try {
        response = handler_(request);
      } catch (const std::exception& e) {
        response =
            HttpResponse::make(500, std::string("handler error: ") + e.what());
      }
    }
    response.headers.set("Connection", "close");
    try {
      stream.write_all(response.serialize());
      // Count only after the write completed — a response the peer never
      // received is not "served".
      ++served_;
    } catch (const std::exception&) {
      ++write_failures_;
    }
  } catch (const std::exception& e) {
    // Malformed request or dead peer; drop the connection (with a trace
    // for operators — this is a server, silence hides bugs).
    ++dropped_;
    std::fprintf(stderr, "privedit http_server: dropped connection: %s\n",
                 e.what());
  }
}

TcpChannel::TcpChannel(std::uint16_t port, int timeout_ms, RetryPolicy retry)
    : port_(port),
      timeout_ms_(timeout_ms),
      retry_(retry),
      rng_(std::make_unique<OsEntropy>()) {}

HttpResponse TcpChannel::attempt(const HttpRequest& request) {
  TcpStream stream = TcpStream::connect(port_);
  stream.set_read_timeout_ms(timeout_ms_);
  HttpRequest req = request;
  req.headers.set("Connection", "close");
  stream.write_all(req.serialize());
  const std::string wire =
      read_http_message(stream, 64 * 1024 * 1024, timeout_ms_);
  return HttpResponse::parse(wire);
}

HttpResponse TcpChannel::round_trip(const HttpRequest& request) {
  const bool probe = request.headers.get(kProbeHeader).has_value();
  std::uint64_t prev_backoff = 0;
  for (int try_no = 0;; ++try_no) {
    ++counters_.attempts;
    const bool last = probe || try_no + 1 >= retry_.max_attempts;
    try {
      HttpResponse resp = attempt(request);
      if (resp.status == 503 && retry_.retry_on_503 && !last) {
        const std::uint64_t backoff =
            retry_.next_backoff_us(prev_backoff, *rng_);
        prev_backoff = backoff;
        const std::uint64_t wait =
            retry_.overload_wait_us(backoff, retry_after_us(resp));
        ++counters_.retries;
        if (wait > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(wait));
        }
        continue;
      }
      return resp;
    } catch (const TransportError& e) {
      if (!retry_.retryable(e.kind()) || last) {
        ++counters_.giveups;
        throw;
      }
    }
    ++counters_.retries;
    const std::uint64_t wait = retry_.next_backoff_us(prev_backoff, *rng_);
    prev_backoff = wait;
    if (wait > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(wait));
    }
  }
}

Handler serialize_handler(Handler inner) {
  auto mutex = std::make_shared<std::mutex>();
  return [mutex, inner = std::move(inner)](const HttpRequest& request) {
    const std::lock_guard<std::mutex> lock(*mutex);
    return inner(request);
  };
}

}  // namespace privedit::net
