#include "privedit/net/http_server.hpp"

#include <charconv>
#include <cstdio>
#include <memory>

#include "privedit/util/error.hpp"

namespace privedit::net {

std::string read_http_message(TcpStream& stream, std::size_t max_bytes) {
  std::string buf;
  std::size_t body_needed = SIZE_MAX;  // unknown until headers parsed
  std::size_t head_end = std::string::npos;

  while (true) {
    if (head_end == std::string::npos) {
      head_end = buf.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        // Parse Content-Length out of the raw head (case-insensitive).
        body_needed = 0;
        std::size_t pos = 0;
        while (pos < head_end) {
          std::size_t eol = buf.find("\r\n", pos);
          if (eol == std::string::npos || eol > head_end) eol = head_end;
          const std::string_view line =
              std::string_view(buf).substr(pos, eol - pos);
          constexpr std::string_view kName = "content-length:";
          if (line.size() > kName.size()) {
            bool match = true;
            for (std::size_t i = 0; i < kName.size(); ++i) {
              if (std::tolower(static_cast<unsigned char>(line[i])) !=
                  kName[i]) {
                match = false;
                break;
              }
            }
            if (match) {
              std::string_view value = line.substr(kName.size());
              while (!value.empty() && value.front() == ' ') {
                value.remove_prefix(1);
              }
              std::size_t n = 0;
              const auto* b = value.data();
              auto [p, ec] = std::from_chars(b, b + value.size(), n);
              if (ec != std::errc()) {
                throw ParseError("http: bad Content-Length on stream");
              }
              body_needed = n;
            }
          }
          pos = eol + 2;
        }
      }
    }
    if (head_end != std::string::npos) {
      const std::size_t total = head_end + 4 + body_needed;
      if (total > max_bytes) {
        throw ProtocolError("http: message exceeds size limit");
      }
      if (buf.size() >= total) {
        buf.resize(total);
        return buf;
      }
    }
    if (buf.size() > max_bytes) {
      throw ProtocolError("http: message exceeds size limit");
    }
    const std::string chunk = stream.read_some();
    if (chunk.empty()) {
      throw ProtocolError("http: connection closed mid-message");
    }
    buf += chunk;
  }
}

HttpServer::HttpServer(std::uint16_t port, Handler handler)
    : listener_(port), handler_(std::move(handler)) {
  if (!handler_) {
    throw Error(ErrorCode::kInvalidArgument, "HttpServer: null handler");
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  if (stopping_.exchange(true)) return;
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    workers.swap(workers_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
}

void HttpServer::accept_loop() {
  while (!stopping_.load()) {
    TcpStream stream = [this]() -> TcpStream {
      try {
        return listener_.accept();
      } catch (const ProtocolError&) {
        return TcpStream(Fd{});
      }
    }();
    if (stream.fd() < 0) {
      if (stopping_.load()) return;
      continue;
    }
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    // Opportunistically reap finished workers to bound the vector.
    if (workers_.size() > 64) {
      for (std::thread& t : workers_) {
        if (t.joinable()) t.join();
      }
      workers_.clear();
    }
    workers_.emplace_back(
        [this, s = std::make_shared<TcpStream>(std::move(stream))]() mutable {
          serve(std::move(*s));
        });
  }
}

void HttpServer::serve(TcpStream stream) {
  try {
    stream.set_read_timeout_ms(5000);
    const std::string wire = read_http_message(stream, 64 * 1024 * 1024);
    const HttpRequest request = HttpRequest::parse(wire);
    HttpResponse response;
    try {
      response = handler_(request);
    } catch (const std::exception& e) {
      response =
          HttpResponse::make(500, std::string("handler error: ") + e.what());
    }
    response.headers.set("Connection", "close");
    // Count before the write completes so a client that has already read
    // the response always observes the increment.
    ++served_;
    stream.write_all(response.serialize());
  } catch (const std::exception& e) {
    // Malformed request or dead peer; drop the connection (with a trace
    // for operators — this is a server, silence hides bugs).
    std::fprintf(stderr, "privedit http_server: dropped connection: %s\n",
                 e.what());
  }
}

HttpResponse TcpChannel::round_trip(const HttpRequest& request) {
  TcpStream stream = TcpStream::connect(port_);
  stream.set_read_timeout_ms(timeout_ms_);
  HttpRequest req = request;
  req.headers.set("Connection", "close");
  stream.write_all(req.serialize());
  const std::string wire = read_http_message(stream, 64 * 1024 * 1024);
  return HttpResponse::parse(wire);
}

Handler serialize_handler(Handler inner) {
  auto mutex = std::make_shared<std::mutex>();
  return [mutex, inner = std::move(inner)](const HttpRequest& request) {
    const std::lock_guard<std::mutex> lock(*mutex);
    return inner(request);
  };
}

}  // namespace privedit::net
