#include "privedit/net/fault.hpp"

#include <chrono>
#include <thread>

#include "privedit/util/error.hpp"

namespace privedit::net {

FaultyChannel::FaultyChannel(Channel* inner, FaultSpec spec,
                             std::unique_ptr<RandomSource> rng,
                             SimClock* clock)
    : inner_(inner), spec_(spec), rng_(std::move(rng)), clock_(clock) {
  if (inner_ == nullptr || rng_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument,
                "FaultyChannel: null inner channel or rng");
  }
}

HttpResponse FaultyChannel::round_trip(const HttpRequest& request) {
  if (spec_.delay > 0 && rng_->chance(spec_.delay)) {
    ++counters_.delayed;
    const std::uint64_t us =
        spec_.max_delay_us > 0 ? rng_->below(spec_.max_delay_us + 1) : 0;
    if (clock_ != nullptr) {
      clock_->advance_us(us);
    } else if (us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
  }
  if (spec_.drop > 0 && rng_->chance(spec_.drop)) {
    ++counters_.dropped;
    throw TransportError(FaultKind::kConnect,
                         "injected: connection refused");
  }
  if (spec_.truncate_request > 0 && rng_->chance(spec_.truncate_request)) {
    ++counters_.truncated_requests;
    throw TransportError(FaultKind::kReset,
                         "injected: stream reset mid-request");
  }

  ++counters_.delivered;
  HttpResponse response = inner_->round_trip(request);

  if (spec_.truncate_response > 0 &&
      rng_->chance(spec_.truncate_response)) {
    ++counters_.truncated_responses;
    throw TransportError(FaultKind::kTruncated,
                         "injected: connection closed mid-response");
  }
  if (spec_.garble_response > 0 && rng_->chance(spec_.garble_response) &&
      !response.body.empty()) {
    ++counters_.garbled;
    // Flip a byte somewhere in the body — enough to break any integrity
    // check, subtle enough that only an integrity check notices.
    const std::size_t at = rng_->below(response.body.size());
    response.body[at] = static_cast<char>(response.body[at] ^ 0x20);
  }
  return response;
}

}  // namespace privedit::net
