#include "privedit/net/fault.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "privedit/util/error.hpp"

namespace privedit::net {

FaultyChannel::FaultyChannel(Channel* inner, FaultSpec spec,
                             std::unique_ptr<RandomSource> rng,
                             SimClock* clock)
    : inner_(inner), spec_(spec), rng_(std::move(rng)), clock_(clock) {
  if (inner_ == nullptr || rng_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument,
                "FaultyChannel: null inner channel or rng");
  }
}

void FaultyChannel::set_outages(OutageSchedule schedule) {
  if (!schedule.empty() && clock_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument,
                "FaultyChannel: outage schedule requires a SimClock");
  }
  outages_ = std::move(schedule);
}

bool FaultyChannel::apply_outage() {
  if (outages_.empty() || clock_ == nullptr) return false;
  const OutageWindow* w = outages_.active(clock_->now_us());
  if (w == nullptr) return false;
  switch (w->kind) {
    case OutageKind::kBlackout:
      ++counters_.outage_faults;
      throw TransportError(FaultKind::kConnect, "outage: blackout");
    case OutageKind::kBrownout:
      if (rng_->chance(w->intensity)) {
        ++counters_.outage_faults;
        throw TransportError(FaultKind::kConnect, "outage: brownout drop");
      }
      // Surviving requests crawl: charge the full delay envelope.
      clock_->advance_us(spec_.max_delay_us > 0 ? spec_.max_delay_us : 50'000);
      return false;
    case OutageKind::kAsymUp:
      ++counters_.outage_faults;
      throw TransportError(FaultKind::kReset, "outage: request lost");
    case OutageKind::kAsymDown:
      // The request WILL be delivered and applied; the response dies on
      // the way back. This is the duplication hazard replay must survive.
      return true;
  }
  return false;
}

HttpResponse FaultyChannel::round_trip(const HttpRequest& request) {
  const bool kill_response = apply_outage();
  if (spec_.delay > 0 && rng_->chance(spec_.delay)) {
    ++counters_.delayed;
    const std::uint64_t us =
        spec_.max_delay_us > 0 ? rng_->below(spec_.max_delay_us + 1) : 0;
    if (clock_ != nullptr) {
      clock_->advance_us(us);
    } else if (us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
  }
  if (spec_.drop > 0 && rng_->chance(spec_.drop)) {
    ++counters_.dropped;
    throw TransportError(FaultKind::kConnect,
                         "injected: connection refused");
  }
  if (spec_.truncate_request > 0 && rng_->chance(spec_.truncate_request)) {
    ++counters_.truncated_requests;
    throw TransportError(FaultKind::kReset,
                         "injected: stream reset mid-request");
  }

  ++counters_.delivered;
  HttpResponse response = inner_->round_trip(request);

  if (kill_response) {
    ++counters_.outage_faults;
    throw TransportError(FaultKind::kTruncated, "outage: response lost");
  }
  if (spec_.truncate_response > 0 &&
      rng_->chance(spec_.truncate_response)) {
    ++counters_.truncated_responses;
    throw TransportError(FaultKind::kTruncated,
                         "injected: connection closed mid-response");
  }
  if (spec_.garble_response > 0 && rng_->chance(spec_.garble_response) &&
      !response.body.empty()) {
    ++counters_.garbled;
    // Flip a byte somewhere in the body — enough to break any integrity
    // check, subtle enough that only an integrity check notices.
    const std::size_t at = rng_->below(response.body.size());
    response.body[at] = static_cast<char>(response.body[at] ^ 0x20);
  }
  return response;
}

}  // namespace privedit::net
