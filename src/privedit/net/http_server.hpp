#pragma once
// Threaded HTTP/1.1 server and client channel over real TCP sockets.
//
// HttpServer accepts connections on a loopback port and dispatches each
// complete request to a Handler (one request per connection, Connection:
// close semantics — all the simulated 2009-era services need). TcpChannel
// is the matching client side, implementing net::Channel so the editor
// clients and the mediator run unchanged over real sockets.

#include <atomic>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "privedit/net/http.hpp"
#include "privedit/net/socket.hpp"
#include "privedit/net/transport.hpp"

namespace privedit::net {

/// Reads one full HTTP message (headers + Content-Length body) from a
/// stream. Throws ProtocolError/ParseError on malformed or truncated
/// input. Exposed for testing.
std::string read_http_message(TcpStream& stream, std::size_t max_bytes);

class HttpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop.
  /// The handler is called concurrently from connection threads; it must
  /// be thread-safe (or internally serialized).
  HttpServer(std::uint16_t port, Handler handler);

  /// Stops accepting, drains connection threads.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  std::size_t requests_served() const { return served_.load(); }

  void stop();

 private:
  void accept_loop();
  void serve(TcpStream stream);

  TcpListener listener_;
  Handler handler_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> served_{0};
  std::thread accept_thread_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
};

/// net::Channel over a real TCP connection (one connection per request).
class TcpChannel final : public Channel {
 public:
  explicit TcpChannel(std::uint16_t port, int timeout_ms = 5000)
      : port_(port), timeout_ms_(timeout_ms) {}

  HttpResponse round_trip(const HttpRequest& request) override;

 private:
  std::uint16_t port_;
  int timeout_ms_;
};

/// Wraps a non-thread-safe Handler with a mutex.
Handler serialize_handler(Handler inner);

}  // namespace privedit::net
