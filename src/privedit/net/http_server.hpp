#pragma once
// Worker-pool HTTP/1.1 server and retrying client channel over real TCP.
//
// HttpServer accepts connections on a loopback port and dispatches each
// complete request to a Handler (one request per connection, Connection:
// close semantics — all the simulated 2009-era services need). Accepted
// connections land in a bounded queue drained by a fixed-size worker pool;
// when the queue is full the server answers 503 immediately instead of
// letting backlog grow without bound, and the accept loop never blocks on
// a slow connection. Each request runs under a deadline: a client may
// drip-feed bytes, but the whole read must finish within
// `request_deadline_ms`. stop() drains gracefully — accepted work is
// finished, then the workers exit and join.
//
// TcpChannel is the matching client side, implementing net::Channel so the
// editor clients and the mediator run unchanged over real sockets. It
// retries refused connects and (optionally) mid-message peer closes under
// a RetryPolicy with exponential backoff + jitter.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "privedit/net/admission.hpp"
#include "privedit/net/http.hpp"
#include "privedit/net/retry.hpp"
#include "privedit/net/socket.hpp"
#include "privedit/net/transport.hpp"

namespace privedit::net {

/// Reads one full HTTP message (headers + Content-Length body) from a
/// stream. Throws ParseError on malformed Content-Length (trailing
/// garbage, conflicting duplicates) and TransportError on truncation,
/// timeout or oversize. `deadline_ms` bounds the total read time across
/// all chunks (0 = no overall deadline; each read still honours the
/// stream's SO_RCVTIMEO). Exposed for testing.
std::string read_http_message(TcpStream& stream, std::size_t max_bytes,
                              int deadline_ms = 0);

struct HttpServerConfig {
  std::size_t worker_threads = 8;
  std::size_t accept_queue_capacity = 128;  // beyond this: 503
  int request_deadline_ms = 5000;           // whole-request read budget
  std::size_t max_message_bytes = 64 * 1024 * 1024;
  /// When set, every parsed request passes admission control (per-client
  /// token bucket + queue deadline) before the handler runs; refusals are
  /// answered 503 + Retry-After. The queue deadline is measured from
  /// accept to handler dispatch, so work nobody is still waiting for is
  /// shed instead of executed.
  std::optional<AdmissionConfig> admission;
};

class HttpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral), spawns the worker pool and
  /// starts the accept loop. The handler is called concurrently from
  /// worker threads; it must be thread-safe (or internally serialized).
  HttpServer(std::uint16_t port, Handler handler,
             HttpServerConfig config = {});

  /// Stops accepting, drains queued connections, joins all threads.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Responses fully written to the peer (a failed write does not count).
  std::size_t requests_served() const { return served_.load(); }

  struct Counters {
    std::size_t served = 0;          // responses fully written
    std::size_t write_failures = 0;  // handler ran, response write failed
    std::size_t rejected_busy = 0;   // 503'd because the queue was full
    std::size_t dropped = 0;         // malformed / timed-out / dead peers
    std::size_t rejected_admission = 0;  // 503'd by admission control
  };
  Counters counters() const;

  /// The admission controller, or nullptr when admission is disabled.
  const AdmissionController* admission() const { return admission_.get(); }

  /// Connections accepted but not yet finished (queued + in-flight).
  std::size_t backlog() const;

  void stop();

 private:
  struct Accepted {
    TcpStream stream;
    std::uint64_t arrival_us = 0;  // steady-clock stamp at accept time
  };

  void accept_loop();
  void worker_loop();
  void serve(Accepted accepted);
  void reject_busy(TcpStream stream);

  TcpListener listener_;
  Handler handler_;
  HttpServerConfig config_;
  std::unique_ptr<AdmissionController> admission_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> served_{0};
  std::atomic<std::size_t> write_failures_{0};
  std::atomic<std::size_t> rejected_busy_{0};
  std::atomic<std::size_t> dropped_{0};
  std::atomic<std::size_t> rejected_admission_{0};
  std::atomic<std::size_t> in_flight_{0};

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Accepted> queue_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

/// net::Channel over a real TCP connection (one connection per request),
/// with retry/backoff on transient transport failures.
class TcpChannel final : public Channel {
 public:
  explicit TcpChannel(std::uint16_t port, int timeout_ms = 5000,
                      RetryPolicy retry = RetryPolicy());

  HttpResponse round_trip(const HttpRequest& request) override;

  struct Counters {
    std::size_t attempts = 0;
    std::size_t retries = 0;
    std::size_t giveups = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  HttpResponse attempt(const HttpRequest& request);

  std::uint16_t port_;
  int timeout_ms_;
  RetryPolicy retry_;
  std::unique_ptr<RandomSource> rng_;
  Counters counters_;
};

/// Wraps a non-thread-safe Handler with a mutex.
Handler serialize_handler(Handler inner);

}  // namespace privedit::net
