#pragma once
// Fault injection for the network path.
//
// FaultyChannel wraps any net::Channel and makes a configured fraction of
// round trips fail the way real networks fail: the connection is refused
// before the request is delivered, the stream dies mid-request or
// mid-response, the response body arrives garbled, or the round trip is
// simply slow. Failures are thrown as the same TransportError kinds the
// real socket layer produces, so retry policies, the mediator and the
// replication layer exercise exactly the code paths a flaky production
// network would hit — deterministically, from a seeded RandomSource.

#include <cstdint>
#include <memory>

#include "privedit/net/socket.hpp"
#include "privedit/net/transport.hpp"
#include "privedit/util/random.hpp"

namespace privedit::net {

/// Per-round-trip fault probabilities, each independently sampled.
/// Order of evaluation: delay, drop, truncate_request (these three fire
/// before the request is delivered), then the inner round trip, then
/// truncate_response / garble_response on the way back.
struct FaultSpec {
  double drop = 0.0;               // connect refused; request not delivered
  double truncate_request = 0.0;   // stream dies mid-request; not delivered
  double truncate_response = 0.0;  // request DELIVERED, response cut short
  double garble_response = 0.0;    // request delivered, body bytes flipped
  double delay = 0.0;              // round trip delayed but successful
  std::uint64_t max_delay_us = 50'000;  // uniform [0, max] when delay fires
};

class FaultyChannel final : public Channel {
 public:
  FaultyChannel(Channel* inner, FaultSpec spec,
                std::unique_ptr<RandomSource> rng, SimClock* clock = nullptr);

  HttpResponse round_trip(const HttpRequest& request) override;

  struct Counters {
    std::size_t delivered = 0;  // round trips that reached the inner channel
    std::size_t dropped = 0;
    std::size_t truncated_requests = 0;
    std::size_t truncated_responses = 0;
    std::size_t garbled = 0;
    std::size_t delayed = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  Channel* inner_;
  FaultSpec spec_;
  std::unique_ptr<RandomSource> rng_;
  SimClock* clock_;
  Counters counters_;
};

}  // namespace privedit::net
