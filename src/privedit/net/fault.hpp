#pragma once
// Fault injection for the network path.
//
// FaultyChannel wraps any net::Channel and makes a configured fraction of
// round trips fail the way real networks fail: the connection is refused
// before the request is delivered, the stream dies mid-request or
// mid-response, the response body arrives garbled, or the round trip is
// simply slow. Failures are thrown as the same TransportError kinds the
// real socket layer produces, so retry policies, the mediator and the
// replication layer exercise exactly the code paths a flaky production
// network would hit — deterministically, from a seeded RandomSource.

#include <cstdint>
#include <memory>
#include <vector>

#include "privedit/net/socket.hpp"
#include "privedit/net/transport.hpp"
#include "privedit/util/random.hpp"

namespace privedit::net {

/// A scripted network outage, active on the simulated clock.
enum class OutageKind : std::uint8_t {
  kBlackout,  // every connect refused; nothing reaches the server
  kBrownout,  // probabilistic drops + heavy delay (intensity = drop prob)
  kAsymUp,    // requests die mid-send; server never sees them
  kAsymDown,  // requests ARE delivered and applied; responses are lost
};

struct OutageWindow {
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;  // exclusive
  OutageKind kind = OutageKind::kBlackout;
  double intensity = 1.0;  // brownout drop probability; ignored otherwise
};

/// An ordered list of outage windows consulted against the sim clock.
/// Windows may overlap; the first one covering `now` wins.
struct OutageSchedule {
  std::vector<OutageWindow> windows;

  const OutageWindow* active(std::uint64_t now_us) const {
    for (const auto& w : windows) {
      if (now_us >= w.start_us && now_us < w.end_us) return &w;
    }
    return nullptr;
  }

  bool empty() const { return windows.empty(); }
};

/// Per-round-trip fault probabilities, each independently sampled.
/// Order of evaluation: delay, drop, truncate_request (these three fire
/// before the request is delivered), then the inner round trip, then
/// truncate_response / garble_response on the way back.
struct FaultSpec {
  double drop = 0.0;               // connect refused; request not delivered
  double truncate_request = 0.0;   // stream dies mid-request; not delivered
  double truncate_response = 0.0;  // request DELIVERED, response cut short
  double garble_response = 0.0;    // request delivered, body bytes flipped
  double delay = 0.0;              // round trip delayed but successful
  std::uint64_t max_delay_us = 50'000;  // uniform [0, max] when delay fires
};

class FaultyChannel final : public Channel {
 public:
  FaultyChannel(Channel* inner, FaultSpec spec,
                std::unique_ptr<RandomSource> rng, SimClock* clock = nullptr);

  HttpResponse round_trip(const HttpRequest& request) override;

  /// Installs a scripted outage schedule, evaluated against the SimClock
  /// on every round trip (before the probabilistic FaultSpec). Requires a
  /// non-null clock. Outage faults are thrown as the matching
  /// TransportError kinds, so clients cannot tell scripted outages from
  /// random ones — exactly the point.
  void set_outages(OutageSchedule schedule);

  const OutageSchedule& outages() const { return outages_; }

  struct Counters {
    std::size_t delivered = 0;  // round trips that reached the inner channel
    std::size_t dropped = 0;
    std::size_t truncated_requests = 0;
    std::size_t truncated_responses = 0;
    std::size_t garbled = 0;
    std::size_t delayed = 0;
    std::size_t outage_faults = 0;  // failures caused by the schedule
  };
  const Counters& counters() const { return counters_; }

 private:
  /// Applies the active outage window, throwing or passing through.
  /// Returns true if the request should still be delivered but the
  /// response must be discarded afterwards (asym_down).
  bool apply_outage();

  Channel* inner_;
  FaultSpec spec_;
  std::unique_ptr<RandomSource> rng_;
  SimClock* clock_;
  OutageSchedule outages_;
  Counters counters_;
};

}  // namespace privedit::net
