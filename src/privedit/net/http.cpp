#include "privedit/net/http.hpp"

#include <algorithm>
#include <charconv>

#include "privedit/util/error.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::net {
namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string reason_for(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 204:
      return "No Content";
    case 400:
      return "Bad Request";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 409:
      return "Conflict";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

struct ParsedHead {
  std::string start_line;
  Headers headers;
  std::string body;
};

ParsedHead parse_message(std::string_view wire) {
  const std::size_t head_end = wire.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    throw ParseError("http: missing header terminator");
  }
  const std::string_view head = wire.substr(0, head_end);
  const std::string_view rest = wire.substr(head_end + 4);

  ParsedHead out;
  std::size_t line_end = head.find("\r\n");
  out.start_line = std::string(
      head.substr(0, line_end == std::string_view::npos ? head.size()
                                                        : line_end));
  std::size_t pos =
      line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t next = head.find("\r\n", pos);
    if (next == std::string_view::npos) next = head.size();
    const std::string_view line = head.substr(pos, next - pos);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      throw ParseError("http: malformed header line");
    }
    std::string_view name = line.substr(0, colon);
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    out.headers.add(std::string(name), std::string(value));
    pos = next + 2;
  }

  // Collect every Content-Length header: request-smuggling classics are a
  // value with trailing garbage ("123abc") and conflicting duplicates —
  // both are rejected, not guessed at.
  std::size_t content_length = 0;
  bool seen_length = false;
  for (const auto& [name, value] : out.headers.entries()) {
    if (!iequals(name, "Content-Length")) continue;
    std::string_view v = value;
    while (!v.empty() && (v.back() == ' ' || v.back() == '\t')) {
      v.remove_suffix(1);
    }
    std::size_t n = 0;
    const auto* b = v.data();
    const auto* e = b + v.size();
    auto [p, ec] = std::from_chars(b, e, n);
    if (ec != std::errc() || p != e || v.empty()) {
      throw ParseError("http: invalid Content-Length");
    }
    if (seen_length && n != content_length) {
      throw ParseError("http: conflicting duplicate Content-Length headers");
    }
    seen_length = true;
    content_length = n;
  }
  if (rest.size() < content_length) {
    throw ParseError("http: truncated body");
  }
  out.body = std::string(rest.substr(0, content_length));
  return out;
}

}  // namespace

void Headers::set(std::string name, std::string value) {
  for (auto& [n, v] : entries_) {
    if (iequals(n, name)) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(std::move(name), std::move(value));
}

void Headers::add(std::string name, std::string value) {
  entries_.emplace_back(std::move(name), std::move(value));
}

std::optional<std::string> Headers::get(std::string_view name) const {
  for (const auto& [n, v] : entries_) {
    if (iequals(n, name)) return v;
  }
  return std::nullopt;
}

bool Headers::contains(std::string_view name) const {
  return get(name).has_value();
}

std::size_t Headers::remove(std::string_view name) {
  std::size_t removed = 0;
  std::erase_if(entries_, [&](const auto& kv) {
    if (iequals(kv.first, name)) {
      ++removed;
      return true;
    }
    return false;
  });
  return removed;
}

std::string HttpRequest::path() const {
  const std::size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::optional<std::string> HttpRequest::query_param(
    std::string_view key) const {
  const std::size_t q = target.find('?');
  if (q == std::string::npos) return std::nullopt;
  const FormData params = FormData::parse(target.substr(q + 1));
  return params.get(key);
}

std::string HttpRequest::serialize() const {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  // Content-Length is always recomputed from the actual body: mediators
  // rewrite bodies after parsing, and a stale length desynchronises the
  // stream framing.
  for (const auto& [n, v] : headers.entries()) {
    if (iequals(n, "Content-Length")) continue;
    out += n + ": " + v + "\r\n";
  }
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "\r\n";
  out += body;
  return out;
}

HttpRequest HttpRequest::parse(std::string_view wire) {
  ParsedHead head = parse_message(wire);
  HttpRequest req;
  const std::size_t sp1 = head.start_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : head.start_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    throw ParseError("http: malformed request line");
  }
  req.method = head.start_line.substr(0, sp1);
  req.target = head.start_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = head.start_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    throw ParseError("http: unsupported version");
  }
  req.headers = std::move(head.headers);
  req.body = std::move(head.body);
  return req;
}

HttpRequest HttpRequest::post_form(std::string target, std::string form_body) {
  HttpRequest req;
  req.method = "POST";
  req.target = std::move(target);
  req.headers.set("Content-Type", "application/x-www-form-urlencoded");
  req.body = std::move(form_body);
  return req;
}

std::string HttpResponse::serialize() const {
  std::string out =
      "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
  // Always recomputed — see HttpRequest::serialize.
  for (const auto& [n, v] : headers.entries()) {
    if (iequals(n, "Content-Length")) continue;
    out += n + ": " + v + "\r\n";
  }
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "\r\n";
  out += body;
  return out;
}

HttpResponse HttpResponse::parse(std::string_view wire) {
  ParsedHead head = parse_message(wire);
  HttpResponse resp;
  // "HTTP/1.1 200 OK"
  const std::size_t sp1 = head.start_line.find(' ');
  if (sp1 == std::string::npos ||
      head.start_line.substr(0, 5) != "HTTP/") {
    throw ParseError("http: malformed status line");
  }
  const std::size_t sp2 = head.start_line.find(' ', sp1 + 1);
  const std::string code = head.start_line.substr(
      sp1 + 1, sp2 == std::string::npos ? std::string::npos : sp2 - sp1 - 1);
  const auto* b = code.data();
  const auto* e = b + code.size();
  auto [p, ec] = std::from_chars(b, e, resp.status);
  if (ec != std::errc() || p != e) {
    throw ParseError("http: invalid status code");
  }
  resp.reason =
      sp2 == std::string::npos ? reason_for(resp.status)
                               : head.start_line.substr(sp2 + 1);
  resp.headers = std::move(head.headers);
  resp.body = std::move(head.body);
  return resp;
}

HttpResponse HttpResponse::make(int status, std::string body,
                                std::string content_type) {
  HttpResponse resp;
  resp.status = status;
  resp.reason = reason_for(status);
  resp.headers.set("Content-Type", std::move(content_type));
  resp.body = std::move(body);
  return resp;
}

}  // namespace privedit::net
