#include "privedit/net/breaker.hpp"

#include <bit>
#include <chrono>

#include "privedit/util/error.hpp"

namespace privedit::net {

std::uint64_t now_steady_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

CircuitBreaker::CircuitBreaker(BreakerConfig config,
                               std::function<std::uint64_t()> now_us)
    : config_(config), now_us_(std::move(now_us)) {
  if (!now_us_) {
    throw Error(ErrorCode::kInvalidArgument, "CircuitBreaker: null clock");
  }
  if (config_.consecutive_failures < 1) config_.consecutive_failures = 1;
  if (config_.window < 1) config_.window = 1;
  if (config_.window > 64) config_.window = 64;  // bitset capacity
  if (config_.min_window > config_.window) config_.min_window = config_.window;
}

bool CircuitBreaker::allow() {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_us_() < open_until_) {
        ++counters_.rejections;
        return false;
      }
      state_ = State::kHalfOpen;
      probe_outstanding_ = false;
      [[fallthrough]];
    case State::kHalfOpen:
      if (probe_outstanding_) {
        ++counters_.rejections;
        return false;
      }
      probe_outstanding_ = true;
      ++counters_.probes;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success() {
  if (state_ == State::kHalfOpen) {
    ++counters_.probe_successes;
    reset();
    return;
  }
  if (state_ == State::kOpen) return;  // stale report from before the trip
  consecutive_failures_ = 0;
  sample(false);
}

void CircuitBreaker::record_failure() {
  if (state_ == State::kHalfOpen) {
    trip();  // probe failed: full cool-down again
    return;
  }
  if (state_ == State::kOpen) return;
  ++consecutive_failures_;
  sample(true);
  if (consecutive_failures_ >= config_.consecutive_failures) {
    trip();
    return;
  }
  if (window_count_ >= config_.min_window &&
      window_failure_rate() > config_.failure_rate) {
    trip();
  }
}

void CircuitBreaker::reset() {
  state_ = State::kClosed;
  probe_outstanding_ = false;
  consecutive_failures_ = 0;
  window_bits_ = 0;
  window_count_ = 0;
}

void CircuitBreaker::trip() {
  ++counters_.trips;
  state_ = State::kOpen;
  open_until_ = now_us_() + config_.cooldown_us;
  probe_outstanding_ = false;
  consecutive_failures_ = 0;
  window_bits_ = 0;
  window_count_ = 0;
}

void CircuitBreaker::sample(bool failed) {
  window_bits_ = (window_bits_ << 1) | (failed ? 1u : 0u);
  if (config_.window < 64) {
    window_bits_ &= (1ULL << config_.window) - 1;
  }
  if (window_count_ < config_.window) ++window_count_;
}

double CircuitBreaker::window_failure_rate() const {
  if (window_count_ == 0) return 0.0;
  return static_cast<double>(std::popcount(window_bits_)) /
         static_cast<double>(window_count_);
}

BreakerChannel::BreakerChannel(Channel* inner, BreakerConfig config,
                               std::function<std::uint64_t()> now_us)
    : inner_(inner), breaker_(config, std::move(now_us)) {
  if (inner_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "BreakerChannel: null inner");
  }
}

HttpResponse BreakerChannel::round_trip(const HttpRequest& request) {
  if (!breaker_.allow()) {
    throw TransportError(FaultKind::kConnect, "circuit breaker open");
  }
  try {
    HttpResponse resp = inner_->round_trip(request);
    breaker_.record_success();
    return resp;
  } catch (const TransportError&) {
    breaker_.record_failure();
    throw;
  }
}

}  // namespace privedit::net
