#pragma once
// Minimal HTTP/1.1 message model with a real serialiser/parser.
//
// The cloud editors speak HTTP: Google Documents POSTs form bodies to
// /Doc?docID=..., Bespin PUTs whole files, Buzzword POSTs XML. The mediator
// operates on these messages, so they are first-class values here. The
// parser covers the subset the simulated services need (Content-Length
// framing, no chunked encoding) and rejects anything malformed.

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace privedit::net {

/// Ordered, case-insensitive-lookup header list.
class Headers {
 public:
  void set(std::string name, std::string value);
  void add(std::string name, std::string value);
  std::optional<std::string> get(std::string_view name) const;
  bool contains(std::string_view name) const;
  std::size_t remove(std::string_view name);

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";  // path + optional ?query
  Headers headers;
  std::string body;

  /// Path without the query string.
  std::string path() const;

  /// First query parameter value, percent-decoded.
  std::optional<std::string> query_param(std::string_view key) const;

  /// Serialises to wire form (adds Content-Length).
  std::string serialize() const;

  /// Parses a complete message. Throws ParseError.
  static HttpRequest parse(std::string_view wire);

  /// Convenience constructor for a form POST.
  static HttpRequest post_form(std::string target, std::string form_body);
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  Headers headers;
  std::string body;

  bool ok() const { return status >= 200 && status < 300; }

  std::string serialize() const;
  static HttpResponse parse(std::string_view wire);

  static HttpResponse make(int status, std::string body,
                           std::string content_type = "text/plain");
};

}  // namespace privedit::net
