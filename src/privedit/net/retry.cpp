#include "privedit/net/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "privedit/util/error.hpp"

namespace privedit::net {

std::uint64_t RetryPolicy::backoff_us(int retry, RandomSource& rng) const {
  double b = static_cast<double>(base_backoff_us);
  for (int i = 0; i < retry; ++i) b *= multiplier;
  b = std::min(b, static_cast<double>(max_backoff_us));
  auto full = static_cast<std::uint64_t>(b);
  if (jitter <= 0.0 || full == 0) return full;
  const double j = std::min(jitter, 1.0);
  const auto span = static_cast<std::uint64_t>(b * j);
  // Uniform in [full - span, full]: decorrelates clients that all saw the
  // same failure instant, so retries don't re-stampede the server.
  return full - (span > 0 ? rng.below(span + 1) : 0);
}

bool RetryPolicy::retryable(FaultKind kind) const {
  switch (kind) {
    case FaultKind::kConnect:
      return true;  // request never delivered
    case FaultKind::kTruncated:
    case FaultKind::kReset:
      return retry_truncated;
    case FaultKind::kTimeout:
    case FaultKind::kOther:
      return false;
  }
  return false;
}

RetryChannel::RetryChannel(Channel* inner, RetryPolicy policy,
                           std::unique_ptr<RandomSource> rng, SimClock* clock)
    : inner_(inner), policy_(policy), rng_(std::move(rng)), clock_(clock) {
  if (inner_ == nullptr || rng_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument,
                "RetryChannel: null inner channel or rng");
  }
  if (policy_.max_attempts < 1) {
    throw Error(ErrorCode::kInvalidArgument,
                "RetryChannel: max_attempts must be >= 1");
  }
}

HttpResponse RetryChannel::round_trip(const HttpRequest& request) {
  for (int attempt = 0;; ++attempt) {
    ++counters_.attempts;
    try {
      return inner_->round_trip(request);
    } catch (const TransportError& e) {
      if (!policy_.retryable(e.kind()) ||
          attempt + 1 >= policy_.max_attempts) {
        ++counters_.giveups;
        throw;
      }
    }
    const std::uint64_t wait = policy_.backoff_us(attempt, *rng_);
    counters_.backoff_us += wait;
    ++counters_.retries;
    if (clock_ != nullptr) {
      clock_->advance_us(wait);
    } else if (wait > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(wait));
    }
  }
}

}  // namespace privedit::net
