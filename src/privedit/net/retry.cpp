#include "privedit/net/retry.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <thread>

#include "privedit/util/error.hpp"

namespace privedit::net {

std::uint64_t RetryPolicy::next_backoff_us(std::uint64_t prev_us,
                                           RandomSource& rng) const {
  const std::uint64_t base = std::min(base_backoff_us, max_backoff_us);
  if (jitter <= 0.0) {
    // Deterministic exponential ladder, chained through prev_us.
    if (prev_us == 0) return base;
    const double next = static_cast<double>(prev_us) * multiplier;
    return static_cast<std::uint64_t>(
        std::min(next, static_cast<double>(max_backoff_us)));
  }
  // Decorrelated jitter: uniform in [base, min(3*prev, cap)]. The envelope
  // expands from the previous *actual* sleep, so two clients that failed at
  // the same instant diverge after the first draw instead of marching in
  // the same [b*(1-j), b] band forever.
  std::uint64_t hi = prev_us == 0 ? base * 3 : prev_us * 3;
  hi = std::clamp<std::uint64_t>(hi, base, max_backoff_us);
  if (hi <= base) return base;
  return base + rng.below(hi - base + 1);
}

bool RetryPolicy::retryable(FaultKind kind) const {
  switch (kind) {
    case FaultKind::kConnect:
      return true;  // request never delivered
    case FaultKind::kTruncated:
    case FaultKind::kReset:
      return retry_truncated;
    case FaultKind::kTimeout:
    case FaultKind::kOther:
      return false;
  }
  return false;
}

std::uint64_t RetryPolicy::overload_wait_us(
    std::uint64_t backoff_us,
    std::optional<std::uint64_t> retry_after) const {
  if (!retry_after) return backoff_us;
  return std::max(backoff_us, std::min(*retry_after, retry_after_cap_us));
}

std::optional<std::uint64_t> retry_after_us(const HttpResponse& response) {
  const auto header = response.headers.get("Retry-After");
  if (!header) return std::nullopt;
  std::string_view value = *header;
  while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
    value.remove_prefix(1);
  }
  while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
    value.remove_suffix(1);
  }
  std::uint64_t seconds = 0;
  const auto* b = value.data();
  const auto* e = b + value.size();
  auto [p, ec] = std::from_chars(b, e, seconds);
  if (value.empty() || ec != std::errc() || p != e) return std::nullopt;
  if (seconds > UINT64_MAX / 1'000'000) return UINT64_MAX;
  return seconds * 1'000'000;
}

RetryChannel::RetryChannel(Channel* inner, RetryPolicy policy,
                           std::unique_ptr<RandomSource> rng, SimClock* clock)
    : inner_(inner), policy_(policy), rng_(std::move(rng)), clock_(clock) {
  if (inner_ == nullptr || rng_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument,
                "RetryChannel: null inner channel or rng");
  }
  if (policy_.max_attempts < 1) {
    throw Error(ErrorCode::kInvalidArgument,
                "RetryChannel: max_attempts must be >= 1");
  }
}

void RetryChannel::wait(std::uint64_t us) {
  counters_.backoff_us += us;
  if (clock_ != nullptr) {
    clock_->advance_us(us);
  } else if (us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

HttpResponse RetryChannel::round_trip(const HttpRequest& request) {
  const bool probe = request.headers.get(kProbeHeader).has_value();
  std::uint64_t prev_backoff = 0;
  for (int attempt = 0;; ++attempt) {
    ++counters_.attempts;
    const bool last = probe || attempt + 1 >= policy_.max_attempts;
    try {
      HttpResponse resp = inner_->round_trip(request);
      if (resp.status == 503 && policy_.retry_on_503 && !last) {
        // The server is alive but shedding: it told us when to come back.
        const std::uint64_t backoff =
            policy_.next_backoff_us(prev_backoff, *rng_);
        prev_backoff = backoff;
        wait(policy_.overload_wait_us(backoff, retry_after_us(resp)));
        ++counters_.retries;
        ++counters_.overload_retries;
        continue;
      }
      return resp;
    } catch (const TransportError& e) {
      if (!policy_.retryable(e.kind()) || last) {
        ++counters_.giveups;
        throw;
      }
    }
    const std::uint64_t backoff = policy_.next_backoff_us(prev_backoff, *rng_);
    prev_backoff = backoff;
    ++counters_.retries;
    wait(backoff);
  }
}

}  // namespace privedit::net
