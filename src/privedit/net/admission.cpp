#include "privedit/net/admission.hpp"

#include <algorithm>

#include "privedit/net/retry.hpp"
#include "privedit/util/error.hpp"

namespace privedit::net {

void TokenBucket::refill(std::uint64_t now_us) {
  if (now_us <= last_us_) return;
  const double elapsed_s =
      static_cast<double>(now_us - last_us_) / 1'000'000.0;
  tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_);
  last_us_ = now_us;
}

std::optional<std::uint64_t> TokenBucket::try_take(std::uint64_t now_us) {
  refill(now_us);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return std::nullopt;
  }
  if (rate_ <= 0.0) return UINT64_MAX;
  const double deficit = 1.0 - tokens_;
  return static_cast<std::uint64_t>(deficit / rate_ * 1'000'000.0) + 1;
}

double TokenBucket::tokens(std::uint64_t now_us) {
  refill(now_us);
  return tokens_;
}

AdmissionController::AdmissionController(AdmissionConfig config,
                                         std::function<std::uint64_t()> now_us)
    : config_(config), now_us_(std::move(now_us)) {
  if (!now_us_) {
    throw Error(ErrorCode::kInvalidArgument, "AdmissionController: null clock");
  }
  if (config_.burst < 1.0) config_.burst = 1.0;
}

std::optional<HttpResponse> AdmissionController::admit(
    const HttpRequest& request, std::uint64_t arrival_us) {
  const std::uint64_t now = now_us_();
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.queue_deadline_us > 0 && now >= arrival_us &&
      now - arrival_us > config_.queue_deadline_us) {
    ++counters_.deadline_expired;
    return overloaded_response(config_.queue_deadline_us,
                               "queue deadline exceeded");
  }
  if (request.headers.get(kProbeHeader).has_value()) {
    // Breaker probes are the client's per-cool-down liveness check; they
    // are already rate-limited at the source and must see the real server.
    ++counters_.admitted;
    return std::nullopt;
  }
  std::string client{request.headers.get(kClientIdHeader).value_or("anon")};
  return admit_locked(std::move(client), now);
}

std::optional<HttpResponse> AdmissionController::admit_key(
    const std::string& key, std::uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  return admit_locked(key, now_us);
}

std::optional<HttpResponse> AdmissionController::admit_locked(
    std::string key, std::uint64_t now) {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) {
    if (buckets_.size() >= config_.max_clients) {
      ++counters_.rate_limited;
      return overloaded_response(1'000'000, "client table full");
    }
    it = buckets_
             .emplace(std::move(key),
                      TokenBucket(config_.rate_per_sec, config_.burst, now))
             .first;
  }
  if (auto wait = it->second.try_take(now)) {
    ++counters_.rate_limited;
    return overloaded_response(*wait, "rate limit exceeded");
  }
  ++counters_.admitted;
  return std::nullopt;
}

AdmissionController::Counters AdmissionController::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

HttpResponse overloaded_response(std::uint64_t wait_us,
                                 const std::string& reason) {
  HttpResponse resp;
  resp.status = 503;
  resp.reason = "Service Unavailable";
  const std::uint64_t secs =
      std::max<std::uint64_t>(1, (wait_us + 999'999) / 1'000'000);
  resp.headers.set("Retry-After", std::to_string(secs));
  resp.headers.set("Content-Type", "text/plain");
  resp.body = reason + "\n";
  return resp;
}

}  // namespace privedit::net
