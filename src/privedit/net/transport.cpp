#include "privedit/net/transport.hpp"

#include "privedit/util/error.hpp"

namespace privedit::net {

std::uint64_t LatencyModel::round_trip_us(std::size_t up_bytes,
                                          std::size_t down_bytes,
                                          RandomSource& rng) const {
  std::uint64_t us = base_us;
  if (jitter_us > 0) us += rng.below(jitter_us + 1);
  if (bytes_per_ms_up > 0) {
    us += static_cast<std::uint64_t>(up_bytes) * 1000 / bytes_per_ms_up;
  }
  if (bytes_per_ms_down > 0) {
    us += static_cast<std::uint64_t>(down_bytes) * 1000 / bytes_per_ms_down;
  }
  us += server_us_per_kb * ((up_bytes + down_bytes) / 1024 + 1);
  return us;
}

LoopbackTransport::LoopbackTransport(Handler server, SimClock* clock,
                                     LatencyModel latency,
                                     std::unique_ptr<RandomSource> rng)
    : server_(std::move(server)),
      clock_(clock),
      latency_(latency),
      rng_(std::move(rng)) {
  if (!server_ || clock_ == nullptr || rng_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument,
                "LoopbackTransport: null server, clock or rng");
  }
}

HttpResponse LoopbackTransport::round_trip(const HttpRequest& request) {
  // Full serialise/parse on both legs: the services receive exactly what a
  // real wire would deliver.
  const std::string request_wire = request.serialize();
  const HttpRequest delivered = HttpRequest::parse(request_wire);

  const HttpResponse raw_response = server_(delivered);
  const std::string response_wire = raw_response.serialize();
  const HttpResponse response = HttpResponse::parse(response_wire);

  ++stats_.requests;
  stats_.bytes_up += request_wire.size();
  stats_.bytes_down += response_wire.size();
  if (tap_enabled_) {
    tap_.push_back(request_wire);
    tap_.push_back(response_wire);
  }
  clock_->advance_us(
      latency_.round_trip_us(request_wire.size(), response_wire.size(), *rng_));
  return response;
}

}  // namespace privedit::net
