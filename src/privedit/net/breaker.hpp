#pragma once
// CircuitBreaker — per-endpoint failure isolation for the degraded-mode
// session layer.
//
// A dead or drowning server must not be hammered by every autosave: once
// requests start failing, the client should *stop sending*, keep working
// locally, and probe cheaply until the endpoint recovers. The breaker is
// the classic three-state machine:
//
//   closed    traffic flows; failures are sampled into a sliding window.
//             Trips to open when either `consecutive_failures` requests in
//             a row failed, or the window's failure rate exceeds
//             `failure_rate` with at least `min_window` samples.
//   open      all traffic is refused locally (allow() == false) until
//             `cooldown_us` has elapsed since the trip.
//   half-open after the cool-down, allow() admits exactly ONE probe; its
//             outcome decides: success closes the breaker (window reset),
//             failure re-trips it for another full cool-down. While a
//             probe is outstanding, further allow() calls are refused, so
//             probe traffic is bounded by one request per cool-down.
//
// Time comes from an injected now_us() so the simulated clock drives the
// state machine deterministically in tests; real deployments pass a
// steady_clock reader (now_steady_us below). The breaker itself is not
// synchronized — it lives in single-threaded client stacks (the mediator);
// wrap externally if shared.

#include <cstdint>
#include <functional>
#include <memory>

#include "privedit/net/socket.hpp"
#include "privedit/net/transport.hpp"

namespace privedit::net {

struct BreakerConfig {
  int consecutive_failures = 3;    // trip after N straight failures
  double failure_rate = 0.5;       // or this fraction of the window failing
  std::size_t min_window = 8;      // rate applies only past this many samples
  std::size_t window = 32;         // sliding sample window (capped at 64)
  std::uint64_t cooldown_us = 1'000'000;  // open -> half-open delay
};

/// Monotonic microseconds from std::chrono::steady_clock.
std::uint64_t now_steady_us();

class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  CircuitBreaker(BreakerConfig config, std::function<std::uint64_t()> now_us);

  /// May this request proceed? Transitions open -> half-open once the
  /// cool-down elapses; in half-open, admits a single outstanding probe.
  bool allow();

  /// Report the outcome of a request that allow() admitted.
  void record_success();
  void record_failure();

  State state() const { return state_; }

  /// Forces the breaker back to closed with a clean window (tests,
  /// operator reset).
  void reset();

  struct Counters {
    std::size_t trips = 0;       // closed/half-open -> open transitions
    std::size_t rejections = 0;  // allow() == false
    std::size_t probes = 0;      // half-open admissions
    std::size_t probe_successes = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  void trip();
  void sample(bool failed);
  double window_failure_rate() const;

  BreakerConfig config_;
  std::function<std::uint64_t()> now_us_;
  State state_ = State::kClosed;
  std::uint64_t open_until_ = 0;
  bool probe_outstanding_ = false;
  int consecutive_failures_ = 0;
  std::uint64_t window_bits_ = 0;  // 1 bit per sample, newest at bit 0
  std::size_t window_count_ = 0;
  Counters counters_;
};

/// net::Channel decorator applying a CircuitBreaker to every round trip:
/// refused calls throw TransportError(kConnect) without touching the inner
/// channel; TransportErrors from the inner channel count as failures
/// (HTTP-level errors do not — a 503 proves the server is alive).
class BreakerChannel final : public Channel {
 public:
  BreakerChannel(Channel* inner, BreakerConfig config,
                 std::function<std::uint64_t()> now_us = now_steady_us);

  HttpResponse round_trip(const HttpRequest& request) override;

  CircuitBreaker& breaker() { return breaker_; }
  const CircuitBreaker& breaker() const { return breaker_; }

 private:
  Channel* inner_;
  CircuitBreaker breaker_;
};

}  // namespace privedit::net
