#pragma once
// Client-side retry with exponential backoff and jitter.
//
// The mediator sits on every request between the editor and the cloud, so
// a transient connect refusal or a connection dying mid-message must not
// surface to the user as a failed save. RetryPolicy decides which
// FaultKinds are safe to retry and how long to back off; RetryChannel is a
// net::Channel decorator applying the policy to any underlying channel
// (TcpChannel applies the same policy internally to the real-socket path).
//
// Safety note: a refused connect means the request never reached the
// server, so retrying is always safe. A truncated/reset *response* means
// the server may already have applied the request; retrying is only safe
// for idempotent traffic (full saves, opens, reads). `retry_truncated`
// gates that class and defaults to on, matching the simulated services —
// full docContents saves are idempotent and delta saves carry a base
// revision the server reconciles.

#include <cstdint>
#include <functional>
#include <memory>

#include "privedit/net/socket.hpp"
#include "privedit/net/transport.hpp"
#include "privedit/util/random.hpp"

namespace privedit::net {

struct RetryPolicy {
  int max_attempts = 4;                  // total tries, including the first
  std::uint64_t base_backoff_us = 2000;  // delay before the first retry
  double multiplier = 2.0;               // exponential growth per retry
  std::uint64_t max_backoff_us = 250'000;
  double jitter = 0.5;        // backoff drawn from [b*(1-jitter), b]
  bool retry_truncated = true;  // retry kTruncated / kReset responses

  /// No retries at all (single attempt).
  static RetryPolicy none() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }

  /// Backoff before retry number `retry` (0-based), jittered with `rng`.
  std::uint64_t backoff_us(int retry, RandomSource& rng) const;

  /// True if a failure of this kind should be retried under this policy.
  bool retryable(FaultKind kind) const;
};

/// net::Channel decorator that retries the wrapped channel's round_trip on
/// retryable TransportErrors. Backoff is charged to the SimClock when one
/// is supplied (deterministic tests/benches) and slept for real otherwise.
class RetryChannel final : public Channel {
 public:
  RetryChannel(Channel* inner, RetryPolicy policy,
               std::unique_ptr<RandomSource> rng, SimClock* clock = nullptr);

  HttpResponse round_trip(const HttpRequest& request) override;

  struct Counters {
    std::size_t attempts = 0;   // every call into the inner channel
    std::size_t retries = 0;    // attempts beyond the first per request
    std::size_t giveups = 0;    // requests that exhausted the policy
    std::uint64_t backoff_us = 0;  // total backoff charged/slept
  };
  const Counters& counters() const { return counters_; }

 private:
  Channel* inner_;
  RetryPolicy policy_;
  std::unique_ptr<RandomSource> rng_;
  SimClock* clock_;
  Counters counters_;
};

}  // namespace privedit::net
