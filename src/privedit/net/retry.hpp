#pragma once
// Client-side retry with exponential backoff and decorrelated jitter.
//
// The mediator sits on every request between the editor and the cloud, so
// a transient connect refusal or a connection dying mid-message must not
// surface to the user as a failed save. RetryPolicy decides which
// FaultKinds are safe to retry and how long to back off; RetryChannel is a
// net::Channel decorator applying the policy to any underlying channel
// (TcpChannel applies the same policy internally to the real-socket path).
//
// Jitter is *decorrelated* (AWS-style): each retry sleeps a uniform draw
// from [base, 3 * previous_sleep], capped at max_backoff_us. The earlier
// [b*(1-jitter), b] band kept every client that observed the same failure
// instant inside the same narrow window, so their retries re-arrived as
// synchronized waves; decorrelation spreads the reattempts across the
// whole envelope and the spread grows with each round.
//
// Overload signalling: a 503 response carrying Retry-After is the server
// *asking* for a delay (admission control, shed queue). When
// `retry_on_503` is set, RetryChannel treats such responses as retryable
// and waits max(backoff, Retry-After) — capped by retry_after_cap_us so a
// hostile or confused server cannot park a client forever.
//
// Safety note: a refused connect means the request never reached the
// server, so retrying is always safe. A truncated/reset *response* means
// the server may already have applied the request; retrying is only safe
// for idempotent traffic (full saves, opens, reads). `retry_truncated`
// gates that class and defaults to on, matching the simulated services —
// full docContents saves are idempotent and delta saves carry a base
// revision the server reconciles (strict-revision mode rejects stale
// resends outright, making them safe).

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "privedit/net/http.hpp"
#include "privedit/net/socket.hpp"
#include "privedit/net/transport.hpp"
#include "privedit/util/random.hpp"

namespace privedit::net {

/// Header that marks a request as a circuit-breaker probe: layers below
/// (RetryChannel, TcpChannel) make exactly one attempt for it, so a
/// half-open probe costs one wire request per cool-down, not a retry burst.
inline constexpr const char* kProbeHeader = "X-Privedit-Probe";

struct RetryPolicy {
  int max_attempts = 4;                  // total tries, including the first
  std::uint64_t base_backoff_us = 2000;  // floor of every backoff draw
  double multiplier = 2.0;               // exponential growth when jitter off
  std::uint64_t max_backoff_us = 250'000;
  double jitter = 0.5;          // > 0 enables decorrelated jitter
  bool retry_truncated = true;  // retry kTruncated / kReset responses
  bool retry_on_503 = false;    // retry 503 responses (admission/overload)
  std::uint64_t retry_after_cap_us = 2'000'000;  // Retry-After honor ceiling

  /// No retries at all (single attempt).
  static RetryPolicy none() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }

  /// The next backoff given the previous one (0 = first retry).
  /// jitter > 0: uniform in [base, min(3*prev, cap)] (decorrelated jitter);
  /// jitter == 0: deterministic exponential prev*multiplier, capped.
  std::uint64_t next_backoff_us(std::uint64_t prev_us, RandomSource& rng) const;

  /// True if a failure of this kind should be retried under this policy.
  bool retryable(FaultKind kind) const;

  /// How long to honor `retry_after_us` from a 503, merged with the
  /// computed backoff: max(backoff, min(retry_after, cap)).
  std::uint64_t overload_wait_us(std::uint64_t backoff_us,
                                 std::optional<std::uint64_t> retry_after_us)
      const;
};

/// Parses a Retry-After header (delta-seconds form only; HTTP-date is not
/// spoken by any simulated service) into microseconds. nullopt when the
/// header is absent or malformed.
std::optional<std::uint64_t> retry_after_us(const HttpResponse& response);

/// net::Channel decorator that retries the wrapped channel's round_trip on
/// retryable TransportErrors (and, when enabled, on 503 overload
/// responses, honoring Retry-After). Backoff is charged to the SimClock
/// when one is supplied (deterministic tests/benches) and slept for real
/// otherwise. Requests carrying kProbeHeader are never retried.
class RetryChannel final : public Channel {
 public:
  RetryChannel(Channel* inner, RetryPolicy policy,
               std::unique_ptr<RandomSource> rng, SimClock* clock = nullptr);

  HttpResponse round_trip(const HttpRequest& request) override;

  struct Counters {
    std::size_t attempts = 0;   // every call into the inner channel
    std::size_t retries = 0;    // attempts beyond the first per request
    std::size_t giveups = 0;    // requests that exhausted the policy
    std::size_t overload_retries = 0;  // retries caused by 503 responses
    std::uint64_t backoff_us = 0;  // total backoff charged/slept
  };
  const Counters& counters() const { return counters_; }

 private:
  void wait(std::uint64_t us);

  Channel* inner_;
  RetryPolicy policy_;
  std::unique_ptr<RandomSource> rng_;
  SimClock* clock_;
  Counters counters_;
};

}  // namespace privedit::net
