#pragma once
// Weighted edit-script and adversary generator.
//
// generate_script(config) expands config.seed into a Script: a weighted
// mix of splices (skewed toward block boundaries and document ends, with
// empty ops, unicode-width payloads and whole-document replaces), undo and
// reopen steps, and — when the config arms them — adversary actions
// (ciphertext tampering, rollback/fork at the provider, crash-seam power
// loss). Generation is pure: the same (seed, weights, ops) always yields
// the same script, and execution never consults the generator again, so a
// shrunk subsequence replays without it.

#include "privedit/sim/config.hpp"
#include "privedit/sim/script.hpp"

namespace privedit::sim {

Script generate_script(const SimConfig& config);

}  // namespace privedit::sim
