#include "privedit/sim/fuzz.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "privedit/cloud/file_store.hpp"
#include "privedit/cloud/store_check.hpp"
#include "privedit/delta/block_diff.hpp"
#include "privedit/delta/delta.hpp"
#include "privedit/enc/block_wire.hpp"
#include "privedit/enc/container.hpp"
#include "privedit/extension/journal.hpp"
#include "privedit/extension/session.hpp"
#include "privedit/net/http.hpp"
#include "privedit/util/crc32.hpp"
#include "privedit/util/error.hpp"

namespace privedit::sim {
namespace {

/// Documents bigger than this make apply()/invert() checks pointlessly
/// slow without covering new code.
constexpr std::size_t kMaxApplySpan = 4096;

void check(bool ok, const char* what) {
  if (!ok) throw FuzzCheckFailure(what);
}

}  // namespace

void fuzz_delta(std::string_view data) {
  delta::Delta parsed;
  try {
    parsed = delta::Delta::parse(data);
  } catch (const ParseError&) {
    return;  // correct rejection
  } catch (const Error&) {
    return;  // count caps etc. also reject loudly — fine
  }
  // Serialise/parse must be a fixed point of the accepted value.
  const std::string wire = parsed.to_wire();
  const delta::Delta reparsed = delta::Delta::parse(wire);
  check(reparsed == parsed, "delta: to_wire/parse is not a fixed point");

  const std::size_t span = parsed.input_span();
  if (span > kMaxApplySpan) return;
  // A delta is valid for any document of length >= input_span, so apply
  // on exactly that document MUST succeed for an accepted delta.
  std::string doc(span, 'a');
  for (std::size_t i = 0; i < doc.size(); ++i) {
    doc[i] = static_cast<char>('a' + i % 17);
  }
  std::string applied;
  try {
    applied = parsed.apply(doc);
  } catch (const Error&) {
    throw FuzzCheckFailure("delta: accepted by parse but apply rejected a "
                           "document of input_span length");
  }
  check(static_cast<std::int64_t>(applied.size()) ==
            static_cast<std::int64_t>(doc.size()) + parsed.length_change(),
        "delta: length_change disagrees with apply");
  const delta::Delta inverse = parsed.invert(doc);
  check(inverse.apply(applied) == doc, "delta: invert does not round trip");
  const delta::Delta canon = parsed.canonicalized();
  check(canon.apply(doc) == applied,
        "delta: canonical form changes the result");
  check(canon.is_canonical(), "delta: canonicalized() not canonical");
}

void fuzz_container(std::string_view data) {
  const bool plausible = enc::looks_like_container(data);
  enc::ContainerHeader header;
  std::size_t units = 0;
  try {
    enc::ContainerReader reader(data);
    header = reader.header();
    units = reader.unit_count();
    for (std::size_t u = 0; u < units && u < 64; ++u) {
      (void)reader.unit(u);
    }
  } catch (const Error&) {
    return;  // malformed container, rejected loudly — correct
  }
  // A fully parsed container must have passed the plausibility probe.
  check(plausible, "container: reader accepted what looks_like rejected");
  check(header.unit_width() > 0, "container: zero unit width");
  check(header.prefix_chars() + units * header.unit_width() == data.size(),
        "container: unit arithmetic does not cover the document");
  // Parsing succeeded: a real open must either succeed or fail loudly.
  // Gate on the header's KDF cost so a fuzzed header cannot make the
  // harness grind through millions of PBKDF2 iterations.
  if (header.kdf_iterations > 64) return;
  try {
    extension::DocumentSession session = extension::DocumentSession::open(
        "fuzz password", data, extension::seeded_rng_factory(1));
    (void)session.plaintext();
  } catch (const Error&) {
    // Wrong password / tampering / truncation — all correct rejections.
  }
}

void fuzz_journal(std::string_view data, const std::string& scratch_dir) {
  namespace fs = std::filesystem;
  fs::create_directories(scratch_dir);
  // Distinct scratch file per input so parallel test shards never collide.
  const std::string path =
      (fs::path(scratch_dir) /
       ("fuzz-" + std::to_string(crc32(as_bytes(data))) + "-" +
        std::to_string(data.size()) + ".wal"))
          .string();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  std::size_t pending = 0;
  std::uint64_t acked_rev = 0;
  {
    extension::EditJournal journal(path);  // load must never crash
    pending = journal.pending().size();
    if (journal.last_acked()) acked_rev = journal.last_acked()->rev;
    // The recovered state must survive an append + reload round trip.
    journal.append_pending({acked_rev + 1, false, "ck", "=1\t+x"});
  }
  {
    extension::EditJournal journal(path);
    check(journal.pending().size() == pending + 1,
          "journal: append after recovery lost or duplicated entries");
    check(!journal.pending().empty() &&
              journal.pending().back().update == "=1\t+x",
          "journal: appended entry corrupted across reload");
    journal.compact();
  }
  {
    extension::EditJournal journal(path);
    check(journal.pending().size() == pending + 1,
          "journal: compact changed the pending set");
  }
  fs::remove(path);
}

void fuzz_store_record(std::string_view data,
                       const std::string& scratch_dir) {
  namespace fs = std::filesystem;
  // Distinct store directory per input so parallel shards never collide.
  const std::string dir =
      (fs::path(scratch_dir) /
       ("store-" + std::to_string(crc32(as_bytes(data))) + "-" +
        std::to_string(data.size())))
          .string();
  fs::create_directories(dir);
  const std::string doc_id = "fuzzdoc";
  {
    // Plant the raw bytes as the document's record file, plus a stale
    // temp beside it — the crash-leftover a store open must sweep.
    cloud::FileStore layout(dir);
    std::ofstream record(layout.path_for(doc_id),
                         std::ios::binary | std::ios::trunc);
    record.write(data.data(), static_cast<std::streamsize>(data.size()));
    std::ofstream stale(layout.path_for(doc_id) + ".tmp",
                        std::ios::binary | std::ios::trunc);
    stale << "stale";
  }
  cloud::FileStore store(dir);
  check(store.tmp_swept() >= 1, "store: opening sweep missed a stale tmp");

  std::optional<cloud::Store::Record> record;
  try {
    record = store.get(doc_id);
  } catch (const ParseError&) {
    // Corrupt record rejected loudly — correct. It must still be listed
    // (scrub/fsck walk it) and load_all must skip-and-report, not die.
  }
  const auto ids = store.list_doc_ids();
  check(std::find(ids.begin(), ids.end(), doc_id) != ids.end(),
        "store: planted record missing from list_doc_ids");
  std::vector<std::string> corrupt;
  const auto all = store.load_all(&corrupt);
  check(all.count(doc_id) + corrupt.size() == 1,
        "store: load_all neither loaded nor reported the record");

  // Classification must never crash, whatever the bytes.
  const cloud::CheckReport report = cloud::check_store(store);
  if (record) {
    // A readable record must survive a put/get round trip bit-for-bit.
    store.put(doc_id, *record);
    const auto again = store.get(doc_id);
    check(again && *again == *record,
          "store: put/get round trip changed a readable record");
  } else {
    check(report.count(cloud::FindingKind::kUnreadableRecord) == 1,
          "store: unreadable record not reported by check_store");
  }
  fs::remove_all(dir);
}

void fuzz_diff(std::string_view data) {
  // 1. The bytes as a block-delta wire message (what a malicious client or
  //    replica can POST): parse must reject loudly or accept a value whose
  //    re-serialisation is a fixed point, and applying an accepted delta
  //    must either honour its anchors or reject with the error taxonomy.
  try {
    const delta::BlockDelta parsed = enc::block_delta_from_wire(data);
    const std::string wire = enc::block_delta_to_wire(parsed);
    check(enc::block_delta_from_wire(wire) == parsed,
          "block delta: to_wire/from_wire is not a fixed point");
    if (parsed.source_size <= kMaxApplySpan &&
        parsed.target_size <= kMaxApplySpan) {
      std::string source(parsed.source_size, '\0');
      for (std::size_t i = 0; i < source.size(); ++i) {
        source[i] = static_cast<char>('a' + i % 23);
      }
      try {
        const std::string out = delta::apply_block_delta(parsed, source);
        check(out.size() == parsed.target_size,
              "block delta: apply produced a size != target_size");
        check(crc32(as_bytes(out)) == parsed.target_crc,
              "block delta: apply accepted a reconstruction off its CRC");
      } catch (const Error&) {
        // Anchor mismatch / inconsistent tiling / CRC miss — all correct.
      }
    }
  } catch (const ParseError&) {
    // correct rejection
  }

  // 2. The bytes as a digest list from a probe response.
  try {
    const std::vector<std::uint64_t> digests =
        enc::block_digests_from_wire(data);
    check(enc::block_digests_from_wire(
              enc::block_digests_to_wire(digests)) == digests,
          "block digests: wire round trip changed the list");
  } catch (const ParseError&) {
    // correct rejection (not a whole number of 16-hex digests)
  }

  // 3. The bytes as a (source, target) pair: every encoder/applier
  //    combination must reconstruct the target exactly, whatever the
  //    content and however the block size divides it.
  if (data.size() > 2 * kMaxApplySpan) return;
  const std::size_t block_size =
      1 + (data.empty() ? 0 : static_cast<unsigned char>(data[0])) % 64;
  const std::size_t cut = data.size() / 2;
  const std::string_view source = data.substr(0, cut);
  const std::string_view target = data.substr(cut);

  const delta::BlockDelta local = delta::block_diff(source, target, block_size);
  check(delta::apply_block_delta(local, source) == target,
        "block delta: local encoder does not round trip");
  std::string doc(source);
  delta::apply_block_delta_inplace(local, doc);
  check(doc == target, "block delta: in-place apply diverges");
  check(enc::block_delta_from_wire(enc::block_delta_to_wire(local)) == local,
        "block delta: encoder output not a wire fixed point");

  delta::BlockDelta remote = delta::block_diff_from_digests(
      delta::block_digests(source, block_size), source.size(), target,
      block_size);
  remote.source_crc = crc32(as_bytes(source));
  check(delta::apply_block_delta(remote, source) == target,
        "block delta: digest-only encoder does not round trip");
}

void fuzz_http(std::string_view data) {
  try {
    const net::HttpRequest request = net::HttpRequest::parse(data);
    const net::HttpRequest again =
        net::HttpRequest::parse(request.serialize());
    check(again.method == request.method && again.target == request.target &&
              again.body == request.body,
          "http: request serialise/parse is not a fixed point");
  } catch (const Error&) {
    // rejected — fine
  }
  try {
    const net::HttpResponse response = net::HttpResponse::parse(data);
    const net::HttpResponse again =
        net::HttpResponse::parse(response.serialize());
    check(again.status == response.status && again.body == response.body,
          "http: response serialise/parse is not a fixed point");
  } catch (const Error&) {
    // rejected — fine
  }
}

}  // namespace privedit::sim
