#pragma once
// Deterministic simulation harness: drives the real private-editing stack
// (GDocsMediator -> IncrementalScheme -> IndexedSkipList/BlockStore ->
// optional Retry/Faulty channels -> LoopbackTransport -> GDocsServer with
// optional FileStore persistence, plus the client write-ahead journal)
// against a trivial std::string reference model, one Script op at a time.
//
// Invariants checked while executing:
//   * model equivalence — the mediator's plaintext mirror equals the
//     reference string after every op, and every deep_verify_every ops the
//     stored ciphertext is independently decrypted (fresh DocumentSession)
//     and compared; the ciphertext must never contain the plaintext.
//   * mandatory detection — under RPC every injected tamper (bit flip,
//     unit swap/drop/replay) must raise IntegrityError/CryptoError at the
//     next open, and every injected rollback/fork must raise RollbackError.
//   * convergence — after a crash-seam power loss or a transport fault the
//     rebuilt stack recovers to either the pre-op or post-op document
//     (never a third state), and the run continues from there.
//
// run_script never throws for SUT misbehaviour: any invariant violation or
// unexpected exception becomes a SimReport with ok=false, a stable
// failure_id, and a one-line repro command (see sim/shrink.hpp for
// reducing the script first).

#include "privedit/sim/config.hpp"
#include "privedit/sim/script.hpp"

namespace privedit::sim {

/// Executes `script` under `config`. Deterministic: equal inputs give
/// equal reports, including across processes.
SimReport run_script(const SimConfig& config, const Script& script);

/// generate_script + run_script in one call.
SimReport run_sim(const SimConfig& config);

}  // namespace privedit::sim
