#pragma once
// Delta-debugging shrinker for failing simulation scripts.
//
// Script ops carry position *selectors* (ppm of the live document length)
// and deterministic payload seeds rather than absolute coordinates, so any
// subsequence of a failing script is itself well-formed. That closure
// property reduces shrinking to plain ddmin: drop chunks of ops while the
// re-run still fails with the same failure_id, then shrink the surviving
// ops' lengths. The result is the script printed in the repro command.

#include <cstddef>

#include "privedit/sim/config.hpp"
#include "privedit/sim/script.hpp"

namespace privedit::sim {

struct ShrinkResult {
  Script script;      // minimal script still producing original.failure_id
  SimReport report;   // the minimal script's report (ok == false)
  std::size_t runs = 0;  // harness executions the search spent
};

/// Minimises `script` (which produced `original` under `config`) with at
/// most `max_runs` harness re-executions. If the failure does not
/// reproduce even once, returns the truncated original unshrunk.
ShrinkResult shrink_failure(const SimConfig& config, const Script& script,
                            const SimReport& original,
                            std::size_t max_runs = 400);

}  // namespace privedit::sim
