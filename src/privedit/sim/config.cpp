#include "privedit/sim/config.hpp"

#include <charconv>
#include <vector>

#include "privedit/util/error.hpp"

namespace privedit::sim {
namespace {

std::string_view mode_tag(enc::Mode mode) {
  switch (mode) {
    case enc::Mode::kRecb:
      return "recb";
    case enc::Mode::kRpc:
      return "rpc";
    case enc::Mode::kCoClo:
      return "coclo";
  }
  throw Error(ErrorCode::kInvalidArgument, "sim config: bad mode");
}

enc::Mode mode_from_tag(std::string_view tag) {
  if (tag == "recb") return enc::Mode::kRecb;
  if (tag == "rpc") return enc::Mode::kRpc;
  if (tag == "coclo") return enc::Mode::kCoClo;
  throw ParseError("sim config: unknown mode '" + std::string(tag) + "'");
}

std::uint64_t parse_u64(std::string_view digits, const char* what) {
  std::uint64_t value = 0;
  const auto* begin = digits.data();
  const auto* end = digits.data() + digits.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (digits.empty() || ec != std::errc() || ptr != end) {
    throw ParseError(std::string("sim config: bad ") + what + " '" +
                     std::string(digits) + "'");
  }
  return value;
}

/// Fault probabilities ride as integer permille so the wire form stays
/// locale-proof and short.
std::uint32_t permille(double p) {
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  return static_cast<std::uint32_t>(p * 1000.0 + 0.5);
}

}  // namespace

std::string SimConfig::to_wire() const {
  std::string out;
  out += "mode=";
  out += mode_tag(mode);
  out += ",b=" + std::to_string(block_chars);
  out += ",seed=" + std::to_string(seed);
  out += ",ops=" + std::to_string(ops);
  out += ",init=" + std::to_string(initial_chars);
  out += ",cap=" + std::to_string(max_doc_chars);
  out += ",journal=" + std::to_string(journal ? 1 : 0);
  out += ",persist=" + std::to_string(persist ? 1 : 0);
  out += ",bd=" + std::to_string(bdelta ? 1 : 0);
  out += ",audit=" + std::to_string(audit ? 1 : 0);
  out += ",retry=" + std::to_string(retry ? 1 : 0);
  out += ",drop=" + std::to_string(permille(faults.drop));
  out += ",truncreq=" + std::to_string(permille(faults.truncate_request));
  out += ",truncresp=" + std::to_string(permille(faults.truncate_response));
  out += ",tamper=" + std::to_string(permille(weights.tamper / 100.0));
  out += ",rollback=" + std::to_string(permille(weights.rollback / 100.0));
  out += ",fork=" + std::to_string(permille(weights.fork / 100.0));
  out += ",crash=" + std::to_string(permille(weights.crash / 100.0));
  out += ",storerot=" + std::to_string(permille(weights.store_rot / 100.0));
  out += ",sh=" + std::to_string(shards);
  out += ",fixdocs=" + std::to_string(fixture_docs);
  out += ",shcrash=" + std::to_string(permille(weights.shard_crash / 100.0));
  out += ",shreb=" + std::to_string(permille(weights.shard_rebalance / 100.0));
  out += ",peredit=" + std::to_string(permille(weights.peer_edit / 100.0));
  out += ",equiv=" + std::to_string(permille(weights.equivocate / 100.0));
  out += ",wsup=" + std::to_string(permille(weights.witness_suppress / 100.0));
  out += ",replay=" + std::to_string(permille(weights.replay / 100.0));
  out += ",mutation=" + std::to_string(static_cast<int>(mutation));
  out += ",offline=" + std::to_string(offline ? 1 : 0);
  out += ",strict=" + std::to_string(strict ? 1 : 0);
  out += ",opint=" + std::to_string(op_interval_us);
  if (!outages.empty()) {
    // start:end:kind:intensity-permille, windows joined by '+' (',' is the
    // field separator and ';' needs shell quoting in repro commands).
    out += ",outage=";
    bool first = true;
    for (const net::OutageWindow& w : outages.windows) {
      if (!first) out += '+';
      first = false;
      out += std::to_string(w.start_us) + ':' + std::to_string(w.end_us) +
             ':' + std::to_string(static_cast<int>(w.kind)) + ':' +
             std::to_string(permille(w.intensity));
    }
  }
  return out;
}

SimConfig SimConfig::parse(std::string_view wire) {
  SimConfig config;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= wire.size(); ++i) {
    if (i != wire.size() && wire[i] != ',') continue;
    const std::string_view field = wire.substr(start, i - start);
    start = i + 1;
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      throw ParseError("sim config: field without '=': " + std::string(field));
    }
    const std::string_view key = field.substr(0, eq);
    const std::string_view value = field.substr(eq + 1);
    if (key == "mode") {
      config.mode = mode_from_tag(value);
    } else if (key == "b") {
      config.block_chars = parse_u64(value, "block size");
    } else if (key == "seed") {
      config.seed = parse_u64(value, "seed");
    } else if (key == "ops") {
      config.ops = parse_u64(value, "op count");
    } else if (key == "init") {
      config.initial_chars = parse_u64(value, "initial chars");
    } else if (key == "cap") {
      config.max_doc_chars = parse_u64(value, "doc cap");
    } else if (key == "journal") {
      config.journal = parse_u64(value, "journal flag") != 0;
    } else if (key == "persist") {
      config.persist = parse_u64(value, "persist flag") != 0;
    } else if (key == "bd") {
      config.bdelta = parse_u64(value, "bdelta flag") != 0;
    } else if (key == "audit") {
      config.audit = parse_u64(value, "audit flag") != 0;
    } else if (key == "retry") {
      config.retry = parse_u64(value, "retry flag") != 0;
    } else if (key == "drop") {
      config.faults.drop = parse_u64(value, "drop permille") / 1000.0;
    } else if (key == "truncreq") {
      config.faults.truncate_request =
          parse_u64(value, "truncate permille") / 1000.0;
    } else if (key == "truncresp") {
      config.faults.truncate_response =
          parse_u64(value, "truncate permille") / 1000.0;
    } else if (key == "tamper") {
      config.weights.tamper = parse_u64(value, "tamper permille") / 10.0;
    } else if (key == "rollback") {
      config.weights.rollback = parse_u64(value, "rollback permille") / 10.0;
    } else if (key == "fork") {
      config.weights.fork = parse_u64(value, "fork permille") / 10.0;
    } else if (key == "crash") {
      config.weights.crash = parse_u64(value, "crash permille") / 10.0;
    } else if (key == "storerot") {
      config.weights.store_rot =
          parse_u64(value, "store-rot permille") / 10.0;
    } else if (key == "sh") {
      config.shards = parse_u64(value, "shard count");
    } else if (key == "fixdocs") {
      config.fixture_docs = parse_u64(value, "fixture docs");
    } else if (key == "shcrash") {
      config.weights.shard_crash =
          parse_u64(value, "shard-crash permille") / 10.0;
    } else if (key == "shreb") {
      config.weights.shard_rebalance =
          parse_u64(value, "shard-rebalance permille") / 10.0;
    } else if (key == "peredit") {
      config.weights.peer_edit = parse_u64(value, "peer-edit permille") / 10.0;
    } else if (key == "equiv") {
      config.weights.equivocate =
          parse_u64(value, "equivocate permille") / 10.0;
    } else if (key == "wsup") {
      config.weights.witness_suppress =
          parse_u64(value, "witness-suppress permille") / 10.0;
    } else if (key == "replay") {
      config.weights.replay = parse_u64(value, "replay permille") / 10.0;
    } else if (key == "mutation") {
      config.mutation = static_cast<Mutation>(parse_u64(value, "mutation"));
    } else if (key == "offline") {
      config.offline = parse_u64(value, "offline flag") != 0;
    } else if (key == "strict") {
      config.strict = parse_u64(value, "strict flag") != 0;
    } else if (key == "opint") {
      config.op_interval_us = parse_u64(value, "op interval");
    } else if (key == "outage") {
      std::size_t wstart = 0;
      for (std::size_t j = 0; j <= value.size(); ++j) {
        if (j != value.size() && value[j] != '+') continue;
        const std::string_view win = value.substr(wstart, j - wstart);
        wstart = j + 1;
        if (win.empty()) continue;
        std::vector<std::string_view> parts;
        std::size_t pstart = 0;
        for (std::size_t k = 0; k <= win.size(); ++k) {
          if (k != win.size() && win[k] != ':') continue;
          parts.push_back(win.substr(pstart, k - pstart));
          pstart = k + 1;
        }
        if (parts.size() != 4) {
          throw ParseError("sim config: bad outage window '" +
                           std::string(win) + "'");
        }
        net::OutageWindow w;
        w.start_us = parse_u64(parts[0], "outage start");
        w.end_us = parse_u64(parts[1], "outage end");
        w.kind = static_cast<net::OutageKind>(parse_u64(parts[2], "outage kind"));
        w.intensity = parse_u64(parts[3], "outage intensity") / 1000.0;
        config.outages.windows.push_back(w);
      }
    } else {
      throw ParseError("sim config: unknown key '" + std::string(key) + "'");
    }
  }
  return config;
}

}  // namespace privedit::sim
