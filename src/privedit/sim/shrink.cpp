#include "privedit/sim/shrink.hpp"

#include <algorithm>
#include <utility>

#include "privedit/sim/harness.hpp"

namespace privedit::sim {
namespace {

/// "Still the same bug": the failure class must match; the message and op
/// index are allowed to drift as the script shrinks.
bool same_failure(const SimReport& report, const SimReport& original) {
  return !report.ok && report.failure_id == original.failure_id;
}

}  // namespace

ShrinkResult shrink_failure(const SimConfig& config, const Script& script,
                            const SimReport& original, std::size_t max_runs) {
  ShrinkResult result;
  result.report = original;

  // Everything after the failing op is dead weight by construction.
  Script current;
  const std::size_t keep =
      std::min(script.ops.size(),
               original.ok ? script.ops.size() : original.failed_at_op + 1);
  current.ops.assign(script.ops.begin(), script.ops.begin() + keep);

  auto attempt = [&](const Script& candidate) -> bool {
    if (result.runs >= max_runs) return false;
    ++result.runs;
    SimReport report = run_script(config, candidate);
    if (!same_failure(report, original)) return false;
    current = candidate;
    result.report = std::move(report);
    return true;
  };

  // The truncation itself must reproduce; if not (a flaky failure — which
  // determinism should preclude), fall back to the full script.
  if (!attempt(current)) {
    current.ops = script.ops;
    if (!attempt(current)) {
      result.script = std::move(current);
      return result;
    }
  }

  // ddmin: remove chunks at ever finer granularity until single ops.
  std::size_t chunk = (current.ops.size() + 1) / 2;
  while (chunk >= 1 && !current.ops.empty() && result.runs < max_runs) {
    bool removed_any = false;
    for (std::size_t start = 0;
         start < current.ops.size() && result.runs < max_runs;) {
      Script candidate;
      candidate.ops.reserve(current.ops.size());
      const std::size_t end = std::min(start + chunk, current.ops.size());
      candidate.ops.assign(current.ops.begin(), current.ops.begin() + start);
      candidate.ops.insert(candidate.ops.end(), current.ops.begin() + end,
                           current.ops.end());
      if (!candidate.ops.empty() && attempt(candidate)) {
        removed_any = true;  // chunk gone; `start` now names the next ops
      } else {
        start = end;
      }
    }
    if (removed_any) {
      chunk = std::min(chunk, (current.ops.size() + 1) / 2);
      if (chunk == 0) break;
      continue;  // retry at the same granularity on the smaller script
    }
    if (chunk == 1) break;
    chunk = (chunk + 1) / 2;
  }

  // Per-op simplification: halve lengths while the failure persists, so
  // e.g. a 64-char insert shrinks to the 1-char insert that suffices.
  for (std::size_t i = 0; i < current.ops.size() && result.runs < max_runs;
       ++i) {
    for (int which = 0; which < 2; ++which) {
      while (result.runs < max_runs) {
        const std::uint32_t value =
            which == 0 ? current.ops[i].len : current.ops[i].len2;
        if (value <= 1) break;
        Script candidate = current;
        (which == 0 ? candidate.ops[i].len : candidate.ops[i].len2) =
            value / 2;
        if (!attempt(candidate)) break;
      }
    }
  }

  result.script = std::move(current);
  return result;
}

}  // namespace privedit::sim
