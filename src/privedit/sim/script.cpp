#include "privedit/sim/script.hpp"

#include <array>
#include <charconv>

#include "privedit/util/error.hpp"
#include "privedit/util/random.hpp"

namespace privedit::sim {
namespace {

char class_tag(TextClass cls) {
  switch (cls) {
    case TextClass::kWords:
      return 'w';
    case TextClass::kRun:
      return 'x';
    case TextClass::kUnicode:
      return 'u';
    case TextClass::kSpecial:
      return 't';
    case TextClass::kEmpty:
      return 'e';
  }
  throw Error(ErrorCode::kInvalidArgument, "sim: bad text class");
}

TextClass class_from_tag(char tag) {
  switch (tag) {
    case 'w':
      return TextClass::kWords;
    case 'x':
      return TextClass::kRun;
    case 'u':
      return TextClass::kUnicode;
    case 't':
      return TextClass::kSpecial;
    case 'e':
      return TextClass::kEmpty;
    default:
      throw ParseError(std::string("sim op: unknown text class '") + tag +
                       "'");
  }
}

std::uint32_t parse_u32(std::string_view digits, const char* what) {
  std::uint32_t value = 0;
  const auto* begin = digits.data();
  const auto* end = digits.data() + digits.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (digits.empty() || ec != std::errc() || ptr != end) {
    throw ParseError(std::string("sim op: bad ") + what + " '" +
                     std::string(digits) + "'");
  }
  return value;
}

/// Splits `s` on ':' into at most 8 fields.
std::vector<std::string_view> split_fields(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == ':') {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
      if (out.size() > 8) {
        throw ParseError("sim op: too many fields");
      }
    }
  }
  return out;
}

/// Position field: decimal ppm, 'b' prefix = snap to a block boundary.
std::string pos_field(const SimOp& op) {
  std::string out;
  if (op.snap) out.push_back('b');
  out += std::to_string(op.pos_ppm);
  return out;
}

void parse_pos_field(std::string_view field, SimOp& op) {
  if (!field.empty() && field.front() == 'b') {
    op.snap = true;
    field.remove_prefix(1);
  }
  op.pos_ppm = parse_u32(field, "position");
  if (op.pos_ppm > 1'000'000) {
    throw ParseError("sim op: position selector above 1e6 ppm");
  }
}

}  // namespace

std::string SimOp::to_wire() const {
  switch (kind) {
    case SimOpKind::kInsert:
      return "i:" + pos_field(*this) + ":" + std::to_string(len) + ":" +
             class_tag(cls) + ":" + std::to_string(arg);
    case SimOpKind::kErase:
      return "d:" + pos_field(*this) + ":" + std::to_string(len);
    case SimOpKind::kReplace:
      return "r:" + pos_field(*this) + ":" + std::to_string(len) + ":" +
             std::to_string(len2) + ":" + class_tag(cls) + ":" +
             std::to_string(arg);
    case SimOpKind::kReplaceAll:
      return "R:" + std::to_string(len) + ":" + class_tag(cls) + ":" +
             std::to_string(arg);
    case SimOpKind::kUndo:
      return "u";
    case SimOpKind::kReopen:
      return "o";
    case SimOpKind::kTamperFlip:
      return "tf:" + std::to_string(arg);
    case SimOpKind::kTamperSwap:
      return "ts:" + std::to_string(arg) + ":" + std::to_string(arg2);
    case SimOpKind::kTamperDrop:
      return "td:" + std::to_string(arg);
    case SimOpKind::kTamperDup:
      return "tp:" + std::to_string(arg);
    case SimOpKind::kRollback:
      return "kb";
    case SimOpKind::kFork:
      return "kf";
    case SimOpKind::kCrash:
      return "c:" + std::to_string(arg);
    case SimOpKind::kStoreRot:
      return "sc:" + std::to_string(arg);
    case SimOpKind::kShardCrash:
      return "sk:" + std::to_string(arg);
    case SimOpKind::kShardRebalance:
      return "sr:" + std::to_string(arg);
    case SimOpKind::kPeerEdit:
      return "be:" + std::to_string(arg);
    case SimOpKind::kEquivocate:
      return "ke:" + std::to_string(arg);
    case SimOpKind::kWitnessSuppress:
      return "kw";
    case SimOpKind::kReplay:
      return "kp";
  }
  throw Error(ErrorCode::kInvalidArgument, "sim: bad op kind");
}

SimOp SimOp::parse(std::string_view wire) {
  const auto fields = split_fields(wire);
  const std::string_view tag = fields[0];
  SimOp op;
  auto want = [&](std::size_t n) {
    if (fields.size() != n) {
      throw ParseError("sim op: wrong field count for '" + std::string(tag) +
                       "'");
    }
  };
  if (tag == "i") {
    want(5);
    op.kind = SimOpKind::kInsert;
    parse_pos_field(fields[1], op);
    op.len = parse_u32(fields[2], "length");
    op.cls = class_from_tag(fields[3].size() == 1 ? fields[3][0] : '?');
    op.arg = parse_u32(fields[4], "arg");
  } else if (tag == "d") {
    want(3);
    op.kind = SimOpKind::kErase;
    parse_pos_field(fields[1], op);
    op.len = parse_u32(fields[2], "length");
  } else if (tag == "r") {
    want(6);
    op.kind = SimOpKind::kReplace;
    parse_pos_field(fields[1], op);
    op.len = parse_u32(fields[2], "length");
    op.len2 = parse_u32(fields[3], "insert length");
    op.cls = class_from_tag(fields[4].size() == 1 ? fields[4][0] : '?');
    op.arg = parse_u32(fields[5], "arg");
  } else if (tag == "R") {
    want(4);
    op.kind = SimOpKind::kReplaceAll;
    op.len = parse_u32(fields[1], "length");
    op.cls = class_from_tag(fields[2].size() == 1 ? fields[2][0] : '?');
    op.arg = parse_u32(fields[3], "arg");
  } else if (tag == "u") {
    want(1);
    op.kind = SimOpKind::kUndo;
  } else if (tag == "o") {
    want(1);
    op.kind = SimOpKind::kReopen;
  } else if (tag == "tf") {
    want(2);
    op.kind = SimOpKind::kTamperFlip;
    op.arg = parse_u32(fields[1], "arg");
  } else if (tag == "ts") {
    want(3);
    op.kind = SimOpKind::kTamperSwap;
    op.arg = parse_u32(fields[1], "arg");
    op.arg2 = parse_u32(fields[2], "arg2");
  } else if (tag == "td") {
    want(2);
    op.kind = SimOpKind::kTamperDrop;
    op.arg = parse_u32(fields[1], "arg");
  } else if (tag == "tp") {
    want(2);
    op.kind = SimOpKind::kTamperDup;
    op.arg = parse_u32(fields[1], "arg");
  } else if (tag == "kb") {
    want(1);
    op.kind = SimOpKind::kRollback;
  } else if (tag == "kf") {
    want(1);
    op.kind = SimOpKind::kFork;
  } else if (tag == "c") {
    want(2);
    op.kind = SimOpKind::kCrash;
    op.arg = parse_u32(fields[1], "arg");
  } else if (tag == "sc") {
    want(2);
    op.kind = SimOpKind::kStoreRot;
    op.arg = parse_u32(fields[1], "arg");
  } else if (tag == "sk") {
    want(2);
    op.kind = SimOpKind::kShardCrash;
    op.arg = parse_u32(fields[1], "arg");
  } else if (tag == "sr") {
    want(2);
    op.kind = SimOpKind::kShardRebalance;
    op.arg = parse_u32(fields[1], "arg");
  } else if (tag == "be") {
    want(2);
    op.kind = SimOpKind::kPeerEdit;
    op.arg = parse_u32(fields[1], "arg");
  } else if (tag == "ke") {
    want(2);
    op.kind = SimOpKind::kEquivocate;
    op.arg = parse_u32(fields[1], "arg");
  } else if (tag == "kw") {
    want(1);
    op.kind = SimOpKind::kWitnessSuppress;
  } else if (tag == "kp") {
    want(1);
    op.kind = SimOpKind::kReplay;
  } else {
    throw ParseError("sim op: unknown tag '" + std::string(tag) + "'");
  }
  return op;
}

std::string Script::to_wire() const {
  std::string out;
  for (const SimOp& op : ops) {
    if (!out.empty()) out.push_back(';');
    out += op.to_wire();
  }
  return out;
}

Script Script::parse(std::string_view wire) {
  Script script;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= wire.size(); ++i) {
    if (i == wire.size() || wire[i] == ';') {
      const std::string_view piece = wire.substr(start, i - start);
      if (!piece.empty()) script.ops.push_back(SimOp::parse(piece));
      start = i + 1;
    }
  }
  return script;
}

std::string op_text(TextClass cls, std::uint32_t arg, std::uint32_t len) {
  if (cls == TextClass::kEmpty || len == 0) return {};
  Xoshiro256 rng(0x51309a11ULL ^ (std::uint64_t{arg} << 20) ^ len);
  std::string out;
  switch (cls) {
    case TextClass::kWords: {
      static constexpr std::array<const char*, 16> kWords = {
          "secure",  "delta",  "cloud",  "editing", "private", "block",
          "cipher",  "nonce",  "splice", "medium",  "journal", "replay",
          "skiplist", "the",   "a",      "of"};
      for (std::uint32_t i = 0; i < len; ++i) {
        if (i > 0) out.push_back(' ');
        out += kWords[rng.below(kWords.size())];
      }
      break;
    }
    case TextClass::kRun: {
      const char c = static_cast<char>('a' + rng.below(26));
      out.assign(len, c);
      break;
    }
    case TextClass::kUnicode: {
      // Mixed-width UTF-8: 2-, 3- and 4-byte sequences plus a combining
      // mark, so code points straddle cipher-block boundaries at every
      // block size.
      static constexpr std::array<const char*, 6> kGlyphs = {
          "\xc3\xa9",              // é  (2 bytes)
          "\xc2\xa3",              // £  (2 bytes)
          "\xe2\x9c\x93",          // ✓  (3 bytes)
          "\xe6\xbc\xa2",          // 漢 (3 bytes)
          "\xf0\x9f\x99\x82",      // 🙂 (4 bytes)
          "\xcc\x81",              // combining acute (2 bytes)
      };
      for (std::uint32_t i = 0; i < len; ++i) {
        out += kGlyphs[rng.below(kGlyphs.size())];
      }
      break;
    }
    case TextClass::kSpecial: {
      static constexpr std::string_view kSpecials = "\t\\&=%+-;:@#\n\r\"' ";
      for (std::uint32_t i = 0; i < len; ++i) {
        out.push_back(kSpecials[rng.below(kSpecials.size())]);
      }
      break;
    }
    case TextClass::kEmpty:
      break;
  }
  return out;
}

}  // namespace privedit::sim
