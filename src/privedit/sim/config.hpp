#pragma once
// SimConfig / SimReport — the reusable run description and result record of
// the deterministic simulation harness (see DESIGN.md §9).
//
// A SimConfig plus a Script (sim/script.hpp) fully determines a run: every
// random choice — generator, scheme nonces, transport jitter, fault
// schedule — derives from `seed`, so a failure reproduces bit-for-bit from
// the printed config/script pair. The config's to_wire()/parse() cover the
// semantically load-bearing knobs and are what the repro command carries;
// host-local paths (work_dir) are deliberately excluded.

#include <cstdint>
#include <string>
#include <string_view>

#include "privedit/enc/types.hpp"
#include "privedit/net/fault.hpp"

namespace privedit::sim {

/// Relative weights of the edit-script generator. Edits are skewed toward
/// block boundaries and document ends because that is where the splice
/// arithmetic (IndexedSkipList spans, re-chunk grouping) has its edge
/// cases; adversary weights are zero unless a phase turns them on.
struct GenWeights {
  double insert = 40;
  double erase = 20;
  double replace = 25;
  double replace_all = 0.5;  // whole-document replace (full-save path)
  double undo = 4;
  double reopen = 1;

  double tamper = 0;     // bit flips + unit swap/drop/replay at the provider
  double rollback = 0;   // serve an older acknowledged state at open
  double fork = 0;       // different bytes at the acknowledged revision
  double crash = 0;      // arm a durability crash seam, then edit
  double store_rot = 0;  // rot the on-disk record, restart the provider, fsck
  double shard_crash = 0;      // kill + restart one shard (sharded runs)
  double shard_rebalance = 0;  // drain a shard out / join it back in

  // Malicious-server adversary (audit=1 runs; see DESIGN.md §16).
  double peer_edit = 0;        // benign second-client write (positive control)
  double equivocate = 0;       // hide a peer write: divergent per-client history
  double witness_suppress = 0; // drop our published chain-head witness
  double replay = 0;           // re-serve a full old (content,rev,chain) tuple

  double empty_bias = 0.06;     // chance an edit degenerates to a no-op
  double boundary_bias = 0.35;  // snap position to a block boundary
  double append_bias = 0.20;    // position = end of document
  std::uint32_t max_edit = 64;  // max delete span / insert code points
};

/// Deliberate SUT mutations used to validate the harness's own detection
/// power (the "does the alarm ring" test): kDropDelete sends every edit
/// with its delete component stripped — the mirror and the server keep the
/// deleted characters, the reference model does not.
enum class Mutation : std::uint8_t {
  kNone = 0,
  kDropDelete = 1,
};

struct SimConfig {
  std::uint64_t seed = 1;
  std::size_t ops = 1000;

  enc::Mode mode = enc::Mode::kRecb;
  std::size_t block_chars = 8;
  std::string password = "sim password";
  std::uint32_t kdf_iterations = 4;  // low on purpose: KDF cost is not SUT

  std::size_t initial_chars = 256;   // document created at step 0
  std::size_t max_doc_chars = 2048;  // inserts are clamped to this

  GenWeights weights;

  bool journal = false;  // client write-ahead journal (needs work_dir)
  bool persist = false;  // provider FileStore persistence (needs work_dir)
  bool bdelta = false;   // differential full saves (block-delta wire form)
  bool audit = false;    // fork-consistency audit chain + witness exchange

  /// Sharded topology: when > 1, the mediator talks to a ShardRouter over
  /// N GDocsServer shards instead of one server, plus `fixture_docs`
  /// unmediated plaintext documents spread across the ring so shard
  /// crash/rebalance ops have a populated corpus to move. Requires
  /// persist=1 (shard crashes rebuild from the per-shard FileStore).
  std::size_t shards = 0;
  std::size_t fixture_docs = 12;
  net::FaultSpec faults;
  bool retry = false;    // RetryChannel between mediator and fault layer

  /// Disconnected operation under scripted outages. `offline` turns on the
  /// mediator's offline queue + circuit breaker; `strict` puts the server
  /// in strict-revision (OCC) mode, which the flush's revision CAS needs to
  /// be duplicate-safe; `op_interval_us` charges the sim clock per op so
  /// outage windows and breaker cool-downs actually elapse (the loopback
  /// transport itself is zero-latency here).
  bool offline = false;
  bool strict = false;
  std::uint64_t op_interval_us = 0;
  net::OutageSchedule outages;

  std::size_t deep_verify_every = 512;  // full decrypt-and-compare cadence
  std::size_t history_limit = 4;        // server version-history cap

  Mutation mutation = Mutation::kNone;

  /// Directory for journal/ and store/ when journal or persist is set.
  /// Not serialised: the repro command supplies its own temp dir.
  std::string work_dir;

  /// `mode=rpc,b=4,seed=7,...` — everything a repro needs except work_dir.
  std::string to_wire() const;
  static SimConfig parse(std::string_view wire);
};

struct SimReport {
  bool ok = true;
  std::string failure_id;   // stable label: "model-equiv", "tamper-undetected", ...
  std::string message;      // human-readable detail
  std::size_t failed_at_op = 0;

  /// State-space coverage counters (EXPERIMENTS.md quotes these).
  struct Coverage {
    std::size_t ops_executed = 0;
    std::size_t inserts = 0;
    std::size_t erases = 0;
    std::size_t replaces = 0;
    std::size_t full_saves = 0;
    std::size_t undos = 0;
    std::size_t reopens = 0;
    std::size_t empty_ops = 0;       // no-op edits that still hit the wire
    std::size_t boundary_snaps = 0;  // positions snapped to block boundaries
    std::size_t unicode_inserts = 0;
    std::size_t special_inserts = 0;
    std::size_t tampers_injected = 0;
    std::size_t tampers_detected = 0;
    std::size_t rollbacks_injected = 0;
    std::size_t rollbacks_detected = 0;
    std::size_t forks_injected = 0;
    std::size_t forks_detected = 0;
    std::size_t crashes_fired = 0;
    std::size_t crashes_recovered = 0;
    std::size_t store_rots_injected = 0;
    std::size_t store_rots_detected = 0;   // fsck findings after the rot
    std::size_t store_rots_repaired = 0;   // store checks clean after repair
    std::size_t shard_crashes = 0;         // shard kill+restart cycles
    std::size_t shard_rebalances = 0;      // drain-out / join-back cycles
    std::size_t docs_migrated = 0;         // docs moved by those rebalances
    std::size_t handoff_rejections = 0;    // writes 503'd mid-migration
    std::size_t transport_errors = 0;
    std::size_t deep_verifies = 0;

    // Differential full saves (bdelta=1 runs; copied from the mediator).
    std::size_t bdelta_saves = 0;      // saves accepted as block deltas
    std::size_t bdelta_fallbacks = 0;  // 412 → plain full-save resends
    std::size_t bdelta_bytes = 0;      // block-delta wire bytes sent
    std::size_t full_save_bytes = 0;   // full-container bytes sent

    // Malicious-server adversary (audit=1 runs). Injected counts must
    // equal detected counts at quiesce — zero silent forks.
    std::size_t peer_edits = 0;              // benign client-B writes landed
    std::size_t equivocations_injected = 0;  // forked per-client histories
    std::size_t equivocations_detected = 0;  // ... raised EquivocationError
    std::size_t witness_suppressions_injected = 0;
    std::size_t witness_suppressions_detected = 0;
    std::size_t replays_injected = 0;        // old (content,rev,chain) tuples
    std::size_t replays_detected = 0;        // ... raised RollbackError
    std::size_t audit_links_committed = 0;   // copied from the mediator
    std::size_t audit_chain_retries = 0;     // chain-412 rebase retries
    std::size_t witnesses_published = 0;

    // Disconnected operation (offline=1 runs; copied from the mediator).
    std::size_t offline_entered = 0;     // documents flipped offline
    std::size_t offline_acks = 0;        // edits absorbed locally
    std::size_t offline_flushes = 0;     // composed updates replayed
    std::size_t offline_rebases = 0;     // flushes rebased over server edits
    std::size_t offline_dedupes = 0;     // ack-lost duplicates suppressed
    std::size_t offline_backpressure = 0;  // 503s at the queue cap
    std::size_t breaker_trips = 0;
    std::size_t outage_faults = 0;       // requests killed by the schedule
  } cov;

  std::size_t final_doc_chars = 0;
  std::uint64_t final_rev = 0;

  /// Set on failure: the config/script pair and a one-line repro command.
  std::string config_wire;
  std::string script_wire;
  std::string repro;
};

}  // namespace privedit::sim
