#include "privedit/sim/harness.hpp"

#include <algorithm>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/cloud/shard_router.hpp"
#include "privedit/cloud/store_check.hpp"
#include "privedit/delta/delta.hpp"
#include "privedit/enc/audit_record.hpp"
#include "privedit/enc/container.hpp"
#include "privedit/extension/audit.hpp"
#include "privedit/extension/fsck.hpp"
#include "privedit/extension/mediator.hpp"
#include "privedit/extension/session.hpp"
#include "privedit/net/fault.hpp"
#include "privedit/net/retry.hpp"
#include "privedit/net/socket.hpp"
#include "privedit/net/transport.hpp"
#include "privedit/sim/gen.hpp"
#include "privedit/util/crashpoint.hpp"
#include "privedit/util/crc32.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/hex.hpp"
#include "privedit/util/random.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::sim {
namespace {

constexpr const char* kDocId = "simdoc";
constexpr const char* kTarget = "/Doc?docID=simdoc";

/// Crash seams reachable from a single edit. journal.compact.* fires during
/// *recovery* opens, so arming it here would crash the recovery itself;
/// the recovery_test crash-matrix covers those seams directly.
constexpr const char* kJournalSeams[] = {
    "journal.append.before_write",
    "journal.append.torn",
    "journal.append.before_fsync",
};
constexpr const char* kStoreSeams[] = {
    "file_store.put.created",     "file_store.put.torn",
    "file_store.put.before_fsync", "file_store.put.before_rename",
    "file_store.put.before_dirsync",
};
constexpr const char* kAuditSeams[] = {
    "audit.append.before_write",
    "audit.append.torn",
    "audit.append.before_fsync",
};

std::uint64_t parse_rev_field(const std::optional<std::string>& field) {
  if (!field) return 0;
  std::uint64_t value = 0;
  for (char c : *field) {
    if (c < '0' || c > '9') return 0;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

/// Alphabet-preserving ciphertext flip: substituting within the Base32
/// alphabet keeps the container decodable so the corruption reaches the
/// *cryptographic* integrity check rather than dying in the codec. Chars
/// outside the alphabet (the codec tag) get a plain byte change, which
/// exercises the framing validator instead.
char flip_char(char c, std::uint32_t salt) {
  static constexpr std::string_view kB32 = "ABCDEFGHIJKLMNOPQRSTUVWXYZ234567";
  const std::size_t at = kB32.find(c);
  if (at == std::string_view::npos) {
    return c == '3' ? '6' : '3';  // codec tag (or stray byte): break framing
  }
  return kB32[(at + 1 + salt % 31) % kB32.size()];
}

struct Splice {
  std::size_t pos = 0;
  std::size_t del = 0;
  std::string text;
};

class Runner {
 public:
  Runner(const SimConfig& config, const Script& script)
      : cfg_(config), script_(script) {}

  SimReport run() {
    rep_.config_wire = cfg_.to_wire();
    try {
      prepare_dirs();
      build_world();
      setup_document();
    } catch (const std::exception& e) {
      fail("setup", e.what());
    }
    for (std::size_t i = 0; i < script_.ops.size() && rep_.ok; ++i) {
      current_op_ = i;
      // Each op costs wall time; without this the zero-latency loopback
      // never lets an outage window or breaker cool-down elapse.
      if (cfg_.op_interval_us > 0) clock_.advance_us(cfg_.op_interval_us);
      try {
        exec_op(script_.ops[i]);
      } catch (const Error& e) {
        fail("unexpected-error", e.what());
      } catch (const std::exception& e) {
        fail("unexpected-exception", e.what());
      }
      if (rep_.ok) {
        ++rep_.cov.ops_executed;
        if (cfg_.deep_verify_every > 0 &&
            (i + 1) % cfg_.deep_verify_every == 0 && !offline_now()) {
          // While offline the server is *expected* to be stale; the drain
          // below re-runs the deep check once the queue has flushed.
          deep_verify();
        }
      }
    }
    if (rep_.ok && cfg_.offline) drain_offline();
    if (rep_.ok && cfg_.deep_verify_every > 0) deep_verify();
    if (rep_.ok && cfg_.audit) audit_quiesce_check();
    if (rep_.ok && cfg_.persist && !sharded()) store_quiesce_check();
    if (rep_.ok && sharded()) shard_equiv_check("quiesce");
    if (rep_.ok && cfg_.bdelta) bdelta_quiesce_check();
    collect_resilience_cov();
    rep_.final_doc_chars = model_.size();
    rep_.final_rev = rev_;
    if (!rep_.ok) {
      rep_.script_wire = script_.to_wire();
      rep_.repro = "PRIVEDIT_SIM_CONFIG='" + rep_.config_wire +
                   "' PRIVEDIT_SIM_SCRIPT='" + rep_.script_wire +
                   "' ./build/tests/sim_test --gtest_filter='SimRepro.*'";
    }
    return rep_;
  }

 private:
  // ----- world construction -----

  bool sharded() const { return cfg_.shards > 1; }

  void prepare_dirs() {
    if (sharded() && !cfg_.persist) {
      throw Error(ErrorCode::kInvalidArgument,
                  "sim: shards>1 needs persist=1 (shard crashes rebuild "
                  "from the per-shard store)");
    }
    if (!cfg_.journal && !cfg_.persist) return;
    if (cfg_.work_dir.empty()) {
      throw Error(ErrorCode::kInvalidArgument,
                  "sim: journal/persist need config.work_dir");
    }
    namespace fs = std::filesystem;
    if (cfg_.journal) fs::create_directories(fs::path(cfg_.work_dir) / "journal");
    if (cfg_.persist && !sharded()) {
      fs::create_directories(fs::path(cfg_.work_dir) / "store");
    }
    if (sharded()) fs::create_directories(fs::path(cfg_.work_dir) / "shards");
  }

  bool faults_armed() const {
    const net::FaultSpec& f = cfg_.faults;
    return f.drop > 0 || f.truncate_request > 0 || f.truncate_response > 0 ||
           f.garble_response > 0 || f.delay > 0 || !cfg_.outages.empty();
  }

  /// (Re)builds the whole stack. `epoch_` keeps rebuild RNG streams
  /// deterministic yet distinct from the pre-crash instance's.
  void build_world() {
    namespace fs = std::filesystem;
    // A rebuild discards the mediator and with it this epoch's counters;
    // bank the audit tallies first so quiesce sees the whole run.
    if (mediator_ != nullptr) {
      const auto& mc = mediator_->counters();
      audit_links_acc_ += mc.audit_links_committed;
      audit_retries_acc_ += mc.audit_chain_retries;
      witnesses_acc_ += mc.witnesses_published;
    }
    mediator_.reset();
    retry_.reset();
    faulty_.reset();
    loop_.reset();
    server_.reset();
    router_.reset();

    net::Handler handler;
    if (sharded()) {
      // N independent shards behind a consistent-hash router. The router
      // ctor doubles as crash recovery: on an epoch rebuild it reloads the
      // persisted membership and reconciles stray/duplicate documents.
      std::vector<std::string> ids;
      for (std::size_t s = 0; s < cfg_.shards; ++s) {
        ids.push_back("s" + std::to_string(s));
      }
      cloud::ShardRouterConfig rc;
      rc.data_dir = (fs::path(cfg_.work_dir) / "shards").string();
      rc.strict_revisions = cfg_.strict;
      rc.history_limit = cfg_.history_limit;
      router_ = std::make_unique<cloud::ShardRouter>(std::move(ids), rc);
      handler = [rt = router_.get()](const net::HttpRequest& r) {
        return rt->handle(r);
      };
    } else {
      server_ = std::make_unique<cloud::GDocsServer>();
      server_->set_history_limit(cfg_.history_limit);
      server_->set_strict_revisions(cfg_.strict);
      if (cfg_.persist) {
        server_->enable_persistence(
            (fs::path(cfg_.work_dir) / "store").string());
      }
      handler = [srv = server_.get()](const net::HttpRequest& r) {
        return srv->handle(r);
      };
    }

    net::LatencyModel latency;
    latency.base_us = 0;
    latency.jitter_us = 0;
    latency.bytes_per_ms_up = 0;
    latency.bytes_per_ms_down = 0;
    latency.server_us_per_kb = 0;
    loop_ = std::make_unique<net::LoopbackTransport>(
        std::move(handler), &clock_, latency,
        std::make_unique<Xoshiro256>(cfg_.seed ^ 0x100bacc0ULL));

    net::Channel* upstream = loop_.get();
    if (faults_armed()) {
      faulty_ = std::make_unique<net::FaultyChannel>(
          upstream, cfg_.faults,
          std::make_unique<Xoshiro256>(cfg_.seed * 0x9e3779b97f4a7c15ULL +
                                       0xfa01 + epoch_),
          &clock_);
      if (!cfg_.outages.empty()) faulty_->set_outages(cfg_.outages);
      upstream = faulty_.get();
    }
    if (cfg_.retry) {
      net::RetryPolicy policy;
      policy.max_attempts = 12;
      policy.base_backoff_us = 100;
      policy.max_backoff_us = 5'000;
      retry_ = std::make_unique<net::RetryChannel>(
          upstream, policy,
          std::make_unique<Xoshiro256>(cfg_.seed * 0x2545f4914f6cdd1dULL +
                                       3 * epoch_ + 5),
          &clock_);
      upstream = retry_.get();
    }

    extension::MediatorConfig mc;
    mc.password = cfg_.password;
    mc.scheme.mode = cfg_.mode;
    mc.scheme.block_chars = cfg_.block_chars;
    mc.scheme.kdf_iterations = cfg_.kdf_iterations;
    mc.rng_factory = extension::seeded_rng_factory(
        cfg_.seed * 6364136223846793005ULL + 1442695040888963407ULL * (epoch_ + 1));
    if (cfg_.journal) {
      mc.journal_dir = (fs::path(cfg_.work_dir) / "journal").string();
    }
    mc.block_delta_saves = cfg_.bdelta;
    if (cfg_.audit) {
      mc.audit = true;
      mc.client_id = "A";  // client B is driven by the harness directly
    }
    if (cfg_.offline) {
      mc.offline.enabled = true;
      if (cfg_.op_interval_us > 0) {
        // Scale the breaker cool-down to the op cadence so probes (and thus
        // mid-run recovery, not just the end-of-run drain) happen during
        // the scripted flap schedule.
        mc.offline.breaker.cooldown_us = 20 * cfg_.op_interval_us;
      }
    }
    mediator_ = std::make_unique<extension::GDocsMediator>(upstream, std::move(mc),
                                                           &clock_);
  }

  // ----- document lifecycle -----

  net::HttpResponse post(std::string form_body) {
    return mediator_->round_trip(
        net::HttpRequest::post_form(kTarget, std::move(form_body)));
  }

  net::HttpResponse open_request() {
    FormData f;
    f.add("cmd", "open");
    return post(f.encode());
  }

  void setup_document() {
    // cmd=create is idempotent end to end (server wipes the doc, mediator
    // resets session + journal), so under faults it can simply be retried.
    for (int attempt = 0;; ++attempt) {
      try {
        FormData f;
        f.add("cmd", "create");
        const net::HttpResponse resp = post(f.encode());
        if (!resp.ok()) {
          fail("setup", "create rejected: " + std::to_string(resp.status));
          return;
        }
        rev_ = parse_rev_field(FormData::parse(resp.body).get("rev"));
        break;
      } catch (const net::TransportError&) {
        ++rep_.cov.transport_errors;
        if (attempt >= 64) {
          fail("setup", "create: transport faults exhausted retries");
          return;
        }
      }
    }
    model_.clear();
    if (cfg_.initial_chars > 0) {
      std::string text =
          op_text(TextClass::kWords, static_cast<std::uint32_t>(cfg_.seed),
                  static_cast<std::uint32_t>(cfg_.initial_chars / 6 + 1));
      if (text.size() > cfg_.initial_chars) text.resize(cfg_.initial_chars);
      exec_full_save(std::move(text));
    }
    if (sharded() && rep_.ok) setup_fixtures();
  }

  // ----- sharded topology -----

  /// The GDocsServer currently authoritative for the mediated document —
  /// the single server in classic runs, the owning shard in sharded runs.
  /// Adversary levers (push_sync, set_raw_content) go through here so they
  /// hit stored state directly, exactly like the classic topology.
  cloud::GDocsServer& authority() {
    if (router_ != nullptr) {
      return router_->shard_server(router_->shard_for(kDocId));
    }
    return *server_;
  }

  std::optional<std::string> raw_doc() {
    return router_ != nullptr ? router_->raw_content(kDocId)
                              : server_->raw_content(kDocId);
  }

  /// Unmediated plaintext ballast spread across the ring: shard crash and
  /// rebalance ops need a populated corpus to move, and the equivalence
  /// check needs reference bytes to compare against. Fixtures are created
  /// once (they survive epoch rebuilds through the per-shard stores).
  void setup_fixtures() {
    for (std::size_t i = 0; i < cfg_.fixture_docs; ++i) {
      const std::string doc_id = "fix" + std::to_string(i);
      const std::string text =
          op_text(TextClass::kWords,
                  static_cast<std::uint32_t>(cfg_.seed * 131 + i), 24);
      FormData create;
      create.add("cmd", "create");
      net::HttpResponse resp = router_->handle(net::HttpRequest::post_form(
          "/Doc?docID=" + percent_encode(doc_id), create.encode()));
      if (!resp.ok()) {
        fail("setup", "fixture create: HTTP " + std::to_string(resp.status));
        return;
      }
      FormData save;
      save.add("session", "1");
      save.add("rev", "0");
      save.add("docContents", text);
      resp = router_->handle(net::HttpRequest::post_form(
          "/Doc?docID=" + percent_encode(doc_id), save.encode()));
      if (!resp.ok()) {
        fail("setup", "fixture save: HTTP " + std::to_string(resp.status));
        return;
      }
      fixtures_[doc_id] = text;
    }
  }

  /// The sharded model-equivalence invariant: every document lives on
  /// exactly one shard and its bytes are exactly the reference's. Checked
  /// after every shard crash, after every rebalance leg, and at quiesce.
  void shard_equiv_check(const char* when) {
    if (!rep_.ok || router_ == nullptr) return;
    for (const auto& [doc_id, expected] : fixtures_) {
      const auto owners = router_->holders(doc_id);
      if (owners.size() != 1) {
        fail("shard-equiv",
             std::string(when) + ": fixture " + doc_id + " held by " +
                 std::to_string(owners.size()) + " shards (want exactly 1)");
        return;
      }
      const auto content = router_->raw_content(doc_id);
      if (!content || *content != expected) {
        fail("shard-equiv",
             std::string(when) + ": fixture " + doc_id +
                 " diverged from its reference after migration");
        return;
      }
    }
    const auto owners = router_->holders(kDocId);
    if (owners.size() != 1) {
      fail("shard-equiv",
           std::string(when) + ": mediated doc held by " +
               std::to_string(owners.size()) + " shards (want exactly 1)");
    }
  }

  void exec_shard_crash(const SimOp& op) {
    if (router_ == nullptr) return;
    const auto ids = router_->members();
    const std::string id = ids[op.arg % ids.size()];
    // Kill the shard process (volatile state gone), then restart it from
    // its durable store. Every document it held must come back intact.
    router_->crash_shard(id);
    router_->restart_shard(id);
    ++rep_.cov.shard_crashes;
    shard_equiv_check("shard-crash");
    if (rep_.ok) exec_reopen();  // the mediated doc must still open clean
  }

  void exec_shard_rebalance(const SimOp& op) {
    if (router_ == nullptr) return;
    const auto ids = router_->members();
    if (ids.size() < 2) return;
    const std::string id = ids[op.arg % ids.size()];
    const std::size_t migrated_before = router_->counters().docs_migrated;
    // Drain the shard out of the ring (all its docs migrate to survivors),
    // then join it back (its ring ranges migrate home again). Both legs
    // must preserve exactly-one-owner and byte-identical content.
    router_->remove_shard(id);
    shard_equiv_check("rebalance-out");
    if (!rep_.ok) return;
    router_->add_shard(id);
    shard_equiv_check("rebalance-in");
    if (!rep_.ok) return;
    ++rep_.cov.shard_rebalances;
    rep_.cov.docs_migrated +=
        router_->counters().docs_migrated - migrated_before;
  }

  // ----- op dispatch -----

  void exec_op(const SimOp& op) {
    switch (op.kind) {
      case SimOpKind::kInsert:
      case SimOpKind::kErase:
      case SimOpKind::kReplace:
        exec_edit(op);
        return;
      case SimOpKind::kReplaceAll: {
        std::string text = op_text(op.cls, op.arg, op.len);
        if (text.size() > cfg_.max_doc_chars) text.resize(cfg_.max_doc_chars);
        track_payload(op.cls, text);
        exec_full_save(std::move(text));
        return;
      }
      case SimOpKind::kUndo:
        exec_undo();
        return;
      case SimOpKind::kReopen:
        exec_reopen();
        return;
      case SimOpKind::kTamperFlip:
      case SimOpKind::kTamperSwap:
      case SimOpKind::kTamperDrop:
      case SimOpKind::kTamperDup:
        exec_tamper(op);
        return;
      case SimOpKind::kRollback:
        exec_rollback(op);
        return;
      case SimOpKind::kFork:
        exec_fork(op);
        return;
      case SimOpKind::kCrash:
        exec_crash(op);
        return;
      case SimOpKind::kStoreRot:
        exec_store_rot(op);
        return;
      case SimOpKind::kShardCrash:
        exec_shard_crash(op);
        return;
      case SimOpKind::kShardRebalance:
        exec_shard_rebalance(op);
        return;
      case SimOpKind::kPeerEdit:
        exec_peer_edit(op);
        return;
      case SimOpKind::kEquivocate:
        exec_equivocate(op);
        return;
      case SimOpKind::kWitnessSuppress:
        exec_witness_suppress(op);
        return;
      case SimOpKind::kReplay:
        exec_replay(op);
        return;
    }
  }

  // ----- edits -----

  std::size_t resolve_pos(const SimOp& op) {
    std::size_t pos = static_cast<std::size_t>(
        std::uint64_t{op.pos_ppm} * model_.size() / 1'000'000);
    if (pos > model_.size()) pos = model_.size();
    if (op.snap && cfg_.block_chars > 1) {
      pos -= pos % cfg_.block_chars;
      ++rep_.cov.boundary_snaps;
    }
    return pos;
  }

  void track_payload(TextClass cls, const std::string& text) {
    if (text.empty()) return;
    if (cls == TextClass::kUnicode) ++rep_.cov.unicode_inserts;
    if (cls == TextClass::kSpecial) ++rep_.cov.special_inserts;
  }

  Splice make_splice(const SimOp& op) {
    Splice s;
    s.pos = resolve_pos(op);
    switch (op.kind) {
      case SimOpKind::kInsert:
        s.text = op_text(op.cls, op.arg, op.len);
        ++rep_.cov.inserts;
        break;
      case SimOpKind::kErase:
        s.del = std::min<std::size_t>(op.len, model_.size() - s.pos);
        ++rep_.cov.erases;
        break;
      case SimOpKind::kReplace:
        s.del = std::min<std::size_t>(op.len, model_.size() - s.pos);
        s.text = op_text(op.cls, op.arg, op.len2);
        ++rep_.cov.replaces;
        break;
      default:
        break;
    }
    // Clamp the insert so the document never outgrows the configured cap
    // (the harness targets splice arithmetic, not memory growth).
    const std::size_t base = model_.size() - s.del;
    const std::size_t room = cfg_.max_doc_chars > base
                                 ? cfg_.max_doc_chars - base
                                 : 0;
    if (s.text.size() > room) s.text.resize(room);
    track_payload(op.cls, s.text);
    if (s.del == 0 && s.text.empty()) ++rep_.cov.empty_ops;
    return s;
  }

  delta::Delta splice_delta(const Splice& s) const {
    delta::Delta d;
    if (s.pos > 0) d.push(delta::Op::retain(s.pos));
    std::size_t del = s.del;
    if (cfg_.mutation == Mutation::kDropDelete) del = 0;  // deliberate SUT bug
    if (del > 0) d.push(delta::Op::erase(del));
    if (!s.text.empty()) d.push(delta::Op::insert(s.text));
    if (d.empty()) d.push(delta::Op::retain(0));  // explicit no-op on the wire
    return d;
  }

  /// Sends one delta update. Returns false if the op was absorbed by fault
  /// reconciliation (model already resynced) or the run has failed.
  bool send_splice(const Splice& s, bool push_undo) {
    std::string after = model_;
    after.replace(s.pos, s.del, s.text);
    FormData f;
    f.add("session", "1");
    f.add("rev", std::to_string(rev_));
    f.add("delta", splice_delta(s).to_wire());
    net::HttpResponse resp;
    try {
      resp = post(f.encode());
    } catch (const net::TransportError&) {
      ++rep_.cov.transport_errors;
      reconcile(model_, after);
      return false;
    }
    if (resp.status == 503 && cfg_.offline) {
      // Offline-queue backpressure: the mediator refused the edit *before*
      // touching the mirror, so the reference simply drops it too.
      return false;
    }
    if (!resp.ok()) {
      fail("save-rejected", "delta save: HTTP " + std::to_string(resp.status) +
                                " " + resp.body);
      return false;
    }
    if (push_undo) {
      undo_.push_back(
          Splice{s.pos, s.text.size(), model_.substr(s.pos, s.del)});
      if (undo_.size() > 64) undo_.pop_front();
    }
    model_ = std::move(after);
    rev_ = parse_rev_field(FormData::parse(resp.body).get("rev"));
    note_snapshot();
    check_model();
    return true;
  }

  void exec_edit(const SimOp& op) {
    const Splice s = make_splice(op);
    if (cfg_.bdelta && op.arg % 2 == 0) {
      // bdelta runs route half the splices through the docContents path —
      // "autosave ships the whole document after a small edit", the traffic
      // shape differential saves exist to compress (a whole-document
      // replace shares no blocks, so kReplaceAll alone never wins the
      // wire-size gate). The other half stays on the delta path so both
      // wire forms interleave against the same container anchor.
      std::string after = model_;
      after.replace(s.pos, s.del, s.text);
      exec_full_save(std::move(after));
      return;
    }
    send_splice(s, true);
  }

  void exec_full_save(std::string text) {
    ++rep_.cov.full_saves;
    FormData f;
    f.add("session", "1");
    f.add("rev", std::to_string(rev_));
    f.add("docContents", text);
    net::HttpResponse resp;
    try {
      resp = post(f.encode());
    } catch (const net::TransportError&) {
      ++rep_.cov.transport_errors;
      reconcile(model_, text);
      return;
    }
    if (resp.status == 503 && cfg_.offline) {
      return;  // offline-queue backpressure: edit dropped on both sides
    }
    if (!resp.ok()) {
      fail("save-rejected", "full save: HTTP " + std::to_string(resp.status));
      return;
    }
    undo_.push_back(Splice{0, text.size(), model_});
    if (undo_.size() > 64) undo_.pop_front();
    model_ = std::move(text);
    rev_ = parse_rev_field(FormData::parse(resp.body).get("rev"));
    note_snapshot();
    check_model();
  }

  void exec_undo() {
    if (undo_.empty()) return;
    const Splice inverse = undo_.back();
    undo_.pop_back();
    if (send_splice(inverse, false)) ++rep_.cov.undos;
  }

  void exec_reopen() {
    net::HttpResponse resp;
    try {
      resp = open_request();
    } catch (const net::TransportError&) {
      ++rep_.cov.transport_errors;
      if (cfg_.offline) {
        // The document was not offline yet (or has no session), so the
        // open hit the wire and died. Keep the local view; the next save
        // flips the document offline and edits keep flowing.
        return;
      }
      reconcile(model_, model_);
      return;
    }
    if (!resp.ok()) {
      fail("reopen-rejected", "open: HTTP " + std::to_string(resp.status));
      return;
    }
    const FormData reply = FormData::parse(resp.body);
    const std::string content = reply.get("content").value_or("");
    if (content != model_) {
      fail("reopen-mismatch",
           "decrypted open returned " + std::to_string(content.size()) +
               " bytes, reference has " + std::to_string(model_.size()));
      return;
    }
    rev_ = parse_rev_field(reply.get("rev"));
    ++rep_.cov.reopens;
    check_model();
  }

  // ----- invariants -----

  void check_model() {
    if (!rep_.ok) return;
    const auto mirror = mediator_->managed_plaintext(kDocId);
    if (!mirror) {
      fail("model-equiv", "mediator holds no mirror for the document");
      return;
    }
    if (*mirror != model_) {
      std::size_t at = 0;
      while (at < mirror->size() && at < model_.size() &&
             (*mirror)[at] == model_[at]) {
        ++at;
      }
      fail("model-equiv",
           "mirror (" + std::to_string(mirror->size()) +
               " bytes) diverges from reference (" +
               std::to_string(model_.size()) + " bytes) at byte " +
               std::to_string(at));
    }
  }

  void deep_verify() {
    if (!rep_.ok) return;
    const auto raw = raw_doc();
    if (!raw) {
      fail("deep-equiv", "server lost the document");
      return;
    }
    try {
      extension::DocumentSession session = extension::DocumentSession::open(
          cfg_.password, *raw,
          extension::seeded_rng_factory(cfg_.seed ^ 0xdee9ULL));
      if (session.plaintext() != model_) {
        fail("deep-equiv",
             "independent decrypt of the stored ciphertext (" +
                 std::to_string(session.plaintext().size()) +
                 " bytes) != reference (" + std::to_string(model_.size()) +
                 " bytes)");
        return;
      }
    } catch (const Error& e) {
      fail("deep-equiv", std::string("stored ciphertext failed to open: ") +
                             e.what());
      return;
    }
    // The provider must never see plaintext: generated payloads are
    // lowercase/multi-byte/punctuation, the Base32 body is uppercase, so
    // any 16-byte plaintext window appearing verbatim is a leak.
    if (model_.size() >= 16 &&
        raw->find(model_.substr(0, 16)) != std::string::npos) {
      fail("plaintext-leak", "stored document contains reference plaintext");
      return;
    }
    ++rep_.cov.deep_verifies;
  }

  bool offline_now() const {
    return cfg_.offline && mediator_ != nullptr &&
           mediator_->offline_active(kDocId);
  }

  /// End-of-run drain (offline runs): the outage schedule is finite, so
  /// advancing the clock and probing must eventually flush the composed
  /// update — then the server must hold exactly the reference (zero lost,
  /// zero duplicated edits after heal).
  void drain_offline() {
    if (mediator_ == nullptr || !mediator_->offline_active(kDocId)) return;
    const std::uint64_t step = std::max<std::uint64_t>(cfg_.op_interval_us,
                                                       1'000);
    for (int i = 0; i < 10'000 && mediator_->offline_active(kDocId); ++i) {
      clock_.advance_us(step);
      mediator_->try_flush(kDocId);
    }
    if (mediator_->offline_active(kDocId)) {
      fail("offline-drain",
           "offline queue failed to flush after the outage schedule ended");
      return;
    }
    net::HttpResponse resp;
    try {
      resp = open_request();
    } catch (const Error& e) {
      fail("offline-drain", std::string("open after drain threw: ") + e.what());
      return;
    }
    if (!resp.ok()) {
      fail("offline-drain",
           "open after drain: HTTP " + std::to_string(resp.status));
      return;
    }
    const FormData reply = FormData::parse(resp.body);
    const std::string content = reply.get("content").value_or("");
    if (content != model_) {
      fail("offline-convergence",
           "post-heal document (" + std::to_string(content.size()) +
               " bytes) != reference (" + std::to_string(model_.size()) +
               " bytes): edits were lost or duplicated across the outage");
      return;
    }
    rev_ = parse_rev_field(reply.get("rev"));
    check_model();
  }

  /// End-of-run invariant for bdelta runs: after quiesce the server's raw
  /// container must be byte-identical to the mediator's ciphertext mirror.
  /// Differential saves only work because the mirror tracks the server
  /// exactly — any drift here means a delta was applied against bytes the
  /// client no longer agrees with.
  void bdelta_quiesce_check() {
    if (offline_now()) return;  // server legitimately stale while offline
    const auto raw = raw_doc();
    const auto mirror = mediator_->managed_ciphertext(kDocId);
    if (!raw || !mirror) {
      fail("bdelta-quiesce", "server or mediator lost the container");
      return;
    }
    if (*raw != *mirror) {
      std::size_t at = 0;
      while (at < raw->size() && at < mirror->size() &&
             (*raw)[at] == (*mirror)[at]) {
        ++at;
      }
      fail("bdelta-quiesce",
           "stored container (" + std::to_string(raw->size()) +
               " bytes) != mediator ciphertext mirror (" +
               std::to_string(mirror->size()) + " bytes) at byte " +
               std::to_string(at) + " after differential saves");
    }
  }

  void collect_resilience_cov() {
    if (mediator_ == nullptr) return;
    const auto& mc = mediator_->counters();
    rep_.cov.bdelta_saves = mc.bdelta_saves;
    rep_.cov.bdelta_fallbacks = mc.bdelta_fallbacks;
    rep_.cov.bdelta_bytes = mc.bdelta_bytes;
    rep_.cov.full_save_bytes = mc.full_save_bytes;
    rep_.cov.offline_entered = mc.offline_entered;
    rep_.cov.offline_acks = mc.offline_acks;
    rep_.cov.offline_flushes = mc.offline_flushes;
    rep_.cov.offline_rebases = mc.offline_rebases;
    rep_.cov.offline_dedupes = mc.offline_dedupes;
    rep_.cov.offline_backpressure = mc.offline_backpressure;
    rep_.cov.audit_links_committed =
        audit_links_acc_ + mc.audit_links_committed;
    rep_.cov.audit_chain_retries = audit_retries_acc_ + mc.audit_chain_retries;
    rep_.cov.witnesses_published = witnesses_acc_ + mc.witnesses_published;
    if (mediator_->breaker() != nullptr) {
      rep_.cov.breaker_trips = mediator_->breaker()->counters().trips;
    }
    if (faulty_ != nullptr) {
      rep_.cov.outage_faults = faulty_->counters().outage_faults;
    }
    if (router_ != nullptr) {
      rep_.cov.handoff_rejections = router_->counters().handoff_rejections;
    }
  }

  /// Fault aftermath: re-open until the channel cooperates and adopt
  /// whichever of {before, after} the server settled on. With the journal
  /// on, open replays the pending entry (revision CAS), so `after` wins;
  /// without it, a never-delivered request legitimately leaves `before`.
  void reconcile(const std::string& before, const std::string& after) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      net::HttpResponse resp;
      try {
        resp = open_request();
      } catch (const net::TransportError&) {
        ++rep_.cov.transport_errors;
        continue;
      }
      if (!resp.ok()) {
        fail("reconcile", "open: HTTP " + std::to_string(resp.status));
        return;
      }
      const FormData reply = FormData::parse(resp.body);
      const std::string content = reply.get("content").value_or("");
      if (content != before && content != after) {
        fail("reconcile-divergence",
             "post-fault document (" + std::to_string(content.size()) +
                 " bytes) matches neither the pre-op (" +
                 std::to_string(before.size()) + ") nor post-op (" +
                 std::to_string(after.size()) + ") state");
        return;
      }
      model_ = content;
      rev_ = parse_rev_field(reply.get("rev"));
      undo_.clear();  // inverses were computed against an uncertain lineage
      check_model();
      return;
    }
    fail("reconcile", "transport faults exhausted 64 reopen attempts");
  }

  // ----- adversary -----

  void note_snapshot() {
    if (!cfg_.journal) return;
    const auto raw = raw_doc();
    if (!raw) return;
    Snapshot snap;
    snap.rev = rev_;
    snap.content = *raw;
    if (cfg_.audit) {
      // Audit replays re-serve the *whole* acknowledged tuple: content,
      // revision, chain and witness set — byte-genuine, just stale.
      if (const auto* doc = authority().table().find(kDocId)) {
        snap.achain = doc->audit_chain;
        snap.witnesses = doc->witnesses;
      }
    }
    snapshots_.push_back(std::move(snap));
    if (snapshots_.size() > 32) snapshots_.pop_front();
  }

  std::string mutate_ciphertext(const std::string& good, const SimOp& op) {
    std::string bad = good;
    if (op.kind == SimOpKind::kTamperFlip) {
      if (bad.empty()) return bad;
      const std::size_t at = op.arg % bad.size();
      bad[at] = flip_char(bad[at], op.arg >> 8);
      return bad;
    }
    // Unit-level surgery relies on the container's arithmetic framing:
    // unit u spans encoded chars [P + u*W, P + (u+1)*W).
    enc::ContainerHeader header;
    std::size_t units = 0;
    try {
      enc::ContainerReader reader(good);
      header = reader.header();
      units = reader.unit_count();
    } catch (const Error&) {
      return good;  // not a container (should not happen); skip
    }
    const std::size_t prefix = header.prefix_chars();
    const std::size_t width = header.unit_width();
    if (width == 0 || units == 0) return good;
    const auto span = [&](std::size_t u) { return prefix + u * width; };
    switch (op.kind) {
      case SimOpKind::kTamperSwap: {
        if (units < 2) return good;
        std::size_t i = op.arg % units;
        std::size_t j = op.arg2 % units;
        if (i == j) j = (i + 1) % units;
        if (i > j) std::swap(i, j);
        const std::string a = bad.substr(span(i), width);
        const std::string b = bad.substr(span(j), width);
        bad.replace(span(j), width, a);
        bad.replace(span(i), width, b);
        return bad;
      }
      case SimOpKind::kTamperDrop: {
        bad.erase(span(op.arg % units), width);
        return bad;
      }
      case SimOpKind::kTamperDup: {
        const std::size_t u = op.arg % units;
        bad.insert(span(u), bad.substr(span(u), width));
        return bad;
      }
      default:
        return good;
    }
  }

  void exec_tamper(const SimOp& op) {
    const auto raw = raw_doc();
    if (!raw || raw->empty()) return;
    const std::string good = *raw;
    const std::string bad = mutate_ciphertext(good, op);
    if (bad == good) return;
    authority().set_raw_content(kDocId, bad);
    ++rep_.cov.tampers_injected;
    bool detected = false;
    try {
      const net::HttpResponse resp = open_request();
      detected = !resp.ok();
    } catch (const IntegrityError&) {
      detected = true;  // includes RollbackError
    } catch (const CryptoError&) {
      detected = true;
    }
    if (detected) {
      ++rep_.cov.tampers_detected;
    } else if (cfg_.mode == enc::Mode::kRpc) {
      fail("tamper-undetected",
           "RPC accepted tampered ciphertext (" + op.to_wire() + ")");
      return;
    }
    heal(good);
  }

  void exec_rollback(const SimOp& op) {
    (void)op;
    if (!cfg_.journal) return;
    const auto raw = raw_doc();
    if (!raw) return;
    const std::string good = *raw;
    const Snapshot* older = nullptr;
    for (const Snapshot& s : snapshots_) {
      if (s.rev < rev_) {
        older = &s;
        break;
      }
    }
    if (older == nullptr) return;  // no strictly older acked state yet
    push_sync(older->rev, older->content);
    ++rep_.cov.rollbacks_injected;
    if (expect_rollback_detected("rollback")) ++rep_.cov.rollbacks_detected;
    heal(good);
  }

  void exec_fork(const SimOp& op) {
    if (!cfg_.journal) return;
    const auto raw = raw_doc();
    if (!raw || raw->empty()) return;
    const std::string good = *raw;
    std::string forked = good;
    const std::size_t at = op.arg % forked.size();
    forked[at] = flip_char(forked[at], op.arg >> 8);
    if (forked == good) return;
    push_sync(rev_, forked);  // same acknowledged revision, different bytes
    ++rep_.cov.forks_injected;
    if (expect_rollback_detected("fork")) ++rep_.cov.forks_detected;
    heal(good);
  }

  /// Adversary lever: a cmd=sync straight at the server (not through the
  /// mediator) adopts content+rev wholesale, exactly what a malicious
  /// replica push can do.
  void push_sync(std::uint64_t rev, const std::string& content,
                 const std::string& achain = {}) {
    FormData f;
    f.add("cmd", "sync");
    f.add("rev", std::to_string(rev));
    f.add("content", content);
    if (!achain.empty()) f.add("achain", achain);
    authority().handle(net::HttpRequest::post_form(kTarget, f.encode()));
  }

  bool expect_rollback_detected(const char* what) {
    try {
      const net::HttpResponse resp = open_request();
      (void)resp;
    } catch (const IntegrityError&) {
      return true;  // RollbackError (or the decrypt noticed first) — good
    } catch (const CryptoError&) {
      return true;
    }
    fail(std::string(what) + "-undetected",
         std::string("journal open accepted a ") + what +
             " of the acknowledged state");
    return false;
  }

  /// Restores the last good stored state and re-syncs the session so the
  /// run continues: sync the bytes back at the acknowledged revision, then
  /// a normal open must succeed and agree with the reference.
  void heal(const std::string& good, const std::string& achain = {}) {
    if (!rep_.ok) return;
    push_sync(rev_, good, achain);
    verify_open_clean("heal");
  }

  /// A post-attack (or quiesce) open that must succeed, agree with the
  /// reference, and re-sync the acknowledged revision.
  void verify_open_clean(const char* what) {
    if (!rep_.ok) return;
    net::HttpResponse resp;
    try {
      resp = open_request();
    } catch (const Error& e) {
      fail(what, std::string("open after restore failed: ") + e.what());
      return;
    }
    if (!resp.ok()) {
      fail(what, "open after restore: HTTP " + std::to_string(resp.status));
      return;
    }
    const FormData reply = FormData::parse(resp.body);
    if (reply.get("content").value_or("") != model_) {
      fail(what, "document changed across an injected-attack round trip");
      return;
    }
    rev_ = parse_rev_field(reply.get("rev"));
    check_model();
  }

  // ----- malicious-server audit adversary (audit=1) -----

  /// Lazily built second client: a memory-only auditor holding the same
  /// password-derived audit key under the id "B". Its edits go straight at
  /// the authoritative server (full-container saves with alink/abase), so
  /// the harness can commit genuine peer history for the adversary to hide.
  extension::DocumentAuditor& peer_auditor() {
    if (!b_auditor_) {
      b_auditor_ = std::make_unique<extension::DocumentAuditor>(
          enc::derive_audit_key(cfg_.password, kDocId), kDocId, "B");
    }
    return *b_auditor_;
  }

  /// One client-B write: open the served container directly, verify the
  /// served chain under B's auditor (trust-on-first-use at first contact),
  /// append a short run of words, save with B's chain link, publish B's
  /// witness. Returns false when the op degenerated to a no-op (no chain
  /// yet, stale view, no room); fails the run on a benign history B cannot
  /// verify. `update_model` false leaves the reference untouched — the
  /// equivocation op wants B's write to be *hidden* state.
  bool peer_edit(std::uint32_t arg, bool update_model) {
    FormData open;
    open.add("cmd", "open");
    open.add("session", "peer");
    net::HttpResponse resp =
        authority().handle(net::HttpRequest::post_form(kTarget, open.encode()));
    if (!resp.ok()) return false;
    const FormData reply = FormData::parse(resp.body);
    const std::string container = reply.get("content").value_or("");
    const std::string achain = reply.get("achain").value_or("");
    const std::uint64_t rev = parse_rev_field(reply.get("rev"));
    if (container.empty() || achain.empty()) return false;

    extension::DocumentSession session = extension::DocumentSession::open(
        cfg_.password, container,
        extension::seeded_rng_factory(cfg_.seed ^ 0xbee5ULL ^ arg));
    if (session.plaintext() != model_) return false;  // mid-attack view; skip

    enc::AuditChain chain;
    try {
      chain = enc::decode_chain(achain);
    } catch (const Error&) {
      fail("peer-audit", "client B served an unparseable chain");
      return false;
    }
    // Chain pruning can move the base past a long-idle B; re-baseline via
    // the same trust-on-first-use path a fresh client would take.
    if (b_auditor_ && b_auditor_->initialized() &&
        chain.base_rev > b_auditor_->committed_rev()) {
      b_auditor_.reset();
    }
    extension::DocumentAuditor& auditor = peer_auditor();
    const std::uint32_t crc = crc32(as_bytes(container));
    if (!auditor.initialized()) {
      if (!enc::verify_chain(auditor.key(), chain) || chain.tip_rev() != rev) {
        fail("peer-audit",
             "client B could not verify a benign chain on first contact");
        return false;
      }
      auditor.adopt(rev, chain.links.empty() ? chain.base_head
                                             : chain.links.back().head);
    } else {
      const auto v = auditor.verify_served(chain, rev, crc);
      if (v.verdict != extension::AuditVerdict::kOk) {
        fail("peer-audit",
             "client B flagged a benign history as " +
                 std::string(extension::audit_verdict_name(v.verdict)) + ": " +
                 v.detail);
        return false;
      }
    }

    std::string text = op_text(TextClass::kWords, arg, 3);
    const std::size_t room = cfg_.max_doc_chars > model_.size()
                                 ? cfg_.max_doc_chars - model_.size()
                                 : 0;
    if (text.size() > room) text.resize(room);
    if (text.empty()) return false;
    delta::Delta pd;
    if (!session.plaintext().empty()) {
      pd.push(delta::Op::retain(session.plaintext().size()));
    }
    pd.push(delta::Op::insert(text));
    (void)session.transform_delta(pd);
    const std::string next = session.scheme().ciphertext_doc();
    const enc::AuditLink link =
        auditor.stage_link(auditor.committed_rev() + 1,
                           crc32(as_bytes(next)));

    FormData save;
    save.add("session", reply.get("session").value_or("peer"));
    save.add("rev", std::to_string(rev));
    save.add("docContents", next);
    save.add("alink", enc::encode_link(link));
    save.add("abase", hex_encode(auditor.committed_head()));
    save.add("abaserev", std::to_string(auditor.committed_rev()));
    net::HttpRequest req = net::HttpRequest::post_form(kTarget, save.encode());
    req.headers.set("X-Privedit-Client", "B");
    resp = authority().handle(req);
    if (!resp.ok()) {
      auditor.drop_staged();
      return false;
    }
    auditor.commit_staged();

    FormData wf;
    wf.add("cmd", "witness");
    wf.add("w", enc::encode_witness(auditor.own_witness()));
    net::HttpRequest wreq = net::HttpRequest::post_form(kTarget, wf.encode());
    wreq.headers.set("X-Privedit-Client", "B");
    if (authority().handle(wreq).ok()) auditor.note_witness_published();

    if (update_model) model_ = session.plaintext();
    return true;
  }

  /// Benign two-writer traffic (the positive control): B commits a write,
  /// then A reopens — its auditor must fast-forward over B's link without
  /// raising anything.
  void exec_peer_edit(const SimOp& op) {
    if (!cfg_.audit || offline_now()) return;
    if (!peer_edit(op.arg, /*update_model=*/true)) return;
    ++rep_.cov.peer_edits;
    exec_reopen();
  }

  /// The SUNDR attack: the server shows B a history, accepts B's write and
  /// witness, then serves A the pre-B state as if B never wrote — two
  /// divergent histories, one per client. A's open must classify this as
  /// equivocation (B's MACed witness speaks for a revision A's own chain
  /// fills differently). Both lineages are burned afterwards, so the heal
  /// is a re-create.
  void exec_equivocate(const SimOp& op) {
    if (!cfg_.audit || offline_now()) return;
    const auto* doc = authority().table().find(kDocId);
    if (doc == nullptr || doc->content.empty() || doc->audit_chain.empty() ||
        doc->rev != rev_) {
      return;  // only fork a settled, chained state
    }
    const std::string pre_content = doc->content;
    const std::uint64_t pre_rev = doc->rev;
    const std::string pre_chain = doc->audit_chain;

    // B's genuine write + witness land at pre_rev+1 ...
    if (!peer_edit(op.arg, /*update_model=*/false)) return;
    // ... and the server hides it from A: content, rev and chain roll back
    // to the pre-B tuple while B's witness stays in the served set.
    push_sync(pre_rev, pre_content, pre_chain);
    ++rep_.cov.equivocations_injected;
    // B now sits on a hidden lineage; a real B would be the one alarming.
    // Its auditor state is evidence of a burned history — drop it.
    b_auditor_.reset();

    // A extends the served (forked) lineage: its link lands at the same
    // revision B's witness speaks for, with a different head.
    SimOp edit;
    edit.kind = SimOpKind::kInsert;
    edit.pos_ppm = 1'000'000;
    edit.len = op.arg % 4 + 1;
    edit.cls = TextClass::kWords;
    edit.arg = op.arg ^ 0x5eedU;
    send_splice(make_splice(edit), false);
    if (!rep_.ok) return;

    bool detected = false;
    try {
      (void)open_request();
    } catch (const EquivocationError&) {
      detected = true;
    } catch (const Error& e) {
      fail("equivocation-misclassified",
           std::string("open raised the wrong alarm for a fork: ") + e.what());
      return;
    }
    if (!detected) {
      fail("equivocation-undetected",
           "open accepted a forked history (" + op.to_wire() + ")");
      return;
    }
    ++rep_.cov.equivocations_detected;
    recreate_document();
  }

  /// Selective witness suppression: the server drops A's published
  /// chain-head witness from the served set. A open must notice its own
  /// claim vanished (the precondition for hiding A's writes from peers).
  void exec_witness_suppress(const SimOp& op) {
    (void)op;
    if (!cfg_.audit || offline_now()) return;
    auto* doc = authority().table().find(kDocId);
    if (doc == nullptr) return;
    if (doc->witnesses.find("A") == doc->witnesses.end()) {
      // A publishes on open; give it one chance to have a claim out.
      exec_reopen();
      if (!rep_.ok) return;
      doc = authority().table().find(kDocId);
      if (doc == nullptr || doc->witnesses.find("A") == doc->witnesses.end()) {
        return;
      }
    }
    const std::string saved = doc->witnesses.at("A");
    doc->witnesses.erase("A");
    authority().table().persist_audit(kDocId, *doc);
    ++rep_.cov.witness_suppressions_injected;

    bool detected = false;
    try {
      (void)open_request();
    } catch (const EquivocationError&) {
      detected = true;
    } catch (const Error& e) {
      fail("witness-suppression-misclassified",
           std::string("open raised the wrong alarm for a suppressed "
                       "witness: ") +
               e.what());
      return;
    }
    if (!detected) {
      fail("witness-suppression-undetected",
           "open accepted a witness set missing this client's published "
           "claim");
      return;
    }
    ++rep_.cov.witness_suppressions_detected;

    // Heal: the witness reappears; the next open must pass clean.
    doc = authority().table().find(kDocId);
    if (doc != nullptr) {
      doc->witnesses["A"] = saved;
      authority().table().persist_audit(kDocId, *doc);
    }
    verify_open_clean("heal");
  }

  /// Full replay: re-serve an old acknowledged tuple — content, revision,
  /// chain AND witness set, all byte-genuine and MAC-valid, just stale.
  /// The chain alone cannot condemn it (the server stored exactly these
  /// bytes once); the committed head ordering must: A's open classifies it
  /// as rollback.
  void exec_replay(const SimOp& op) {
    (void)op;
    if (!cfg_.audit || offline_now()) return;
    const auto* doc = authority().table().find(kDocId);
    if (doc == nullptr || doc->audit_chain.empty() || doc->rev != rev_) return;
    const std::string good_content = doc->content;
    const std::string good_chain = doc->audit_chain;
    const auto good_witnesses = doc->witnesses;
    const Snapshot* older = nullptr;
    for (const Snapshot& s : snapshots_) {
      if (s.rev < rev_ && !s.achain.empty()) {
        older = &s;
        break;
      }
    }
    if (older == nullptr) return;

    push_sync(older->rev, older->content, older->achain);
    if (auto* d = authority().table().find(kDocId)) {
      d->witnesses = older->witnesses;
      authority().table().persist_audit(kDocId, *d);
    }
    ++rep_.cov.replays_injected;

    bool detected = false;
    try {
      (void)open_request();
    } catch (const RollbackError&) {
      detected = true;
    } catch (const Error& e) {
      fail("replay-misclassified",
           std::string("open raised the wrong alarm for a replayed "
                       "history: ") +
               e.what());
      return;
    }
    if (!detected) {
      fail("replay-undetected",
           "open accepted a replayed history snapshot (" + op.to_wire() + ")");
      return;
    }
    ++rep_.cov.replays_detected;

    // Heal: restore the present tuple wholesale.
    push_sync(rev_, good_content, good_chain);
    if (auto* d = authority().table().find(kDocId)) {
      d->witnesses = good_witnesses;
      authority().table().persist_audit(kDocId, *d);
    }
    verify_open_clean("heal");
  }

  /// Post-equivocation heal: both lineages are compromised, so the run
  /// re-creates the document through the mediator (server wipes chain and
  /// witnesses, A re-roots at a fresh genesis) and restores the reference
  /// bytes with a normal full save.
  void recreate_document() {
    if (!rep_.ok) return;
    const std::string text = model_;
    for (int attempt = 0;; ++attempt) {
      try {
        FormData f;
        f.add("cmd", "create");
        const net::HttpResponse resp = post(f.encode());
        if (!resp.ok()) {
          fail("heal", "re-create rejected: HTTP " +
                           std::to_string(resp.status));
          return;
        }
        rev_ = parse_rev_field(FormData::parse(resp.body).get("rev"));
        break;
      } catch (const net::TransportError&) {
        ++rep_.cov.transport_errors;
        if (attempt >= 64) {
          fail("heal", "re-create: transport faults exhausted retries");
          return;
        }
      }
    }
    model_.clear();
    undo_.clear();
    snapshots_.clear();  // pre-create lineage is gone
    b_auditor_.reset();
    if (!text.empty()) exec_full_save(text);
    check_model();
  }

  /// End-of-run invariant for audit runs: every injected attack was
  /// detected (zero silent forks — the per-op fails enforce the same, this
  /// re-asserts the aggregate), the chain machinery demonstrably ran, and
  /// a final open verifies the full history clean.
  void audit_quiesce_check() {
    const auto& cov = rep_.cov;
    if (cov.equivocations_detected != cov.equivocations_injected) {
      fail("equivocation-undetected",
           std::to_string(cov.equivocations_injected -
                          cov.equivocations_detected) +
               " injected equivocations were never detected");
      return;
    }
    if (cov.witness_suppressions_detected != cov.witness_suppressions_injected) {
      fail("witness-suppression-undetected",
           std::to_string(cov.witness_suppressions_injected -
                          cov.witness_suppressions_detected) +
               " injected witness suppressions were never detected");
      return;
    }
    if (cov.replays_detected != cov.replays_injected) {
      fail("replay-undetected",
           std::to_string(cov.replays_injected - cov.replays_detected) +
               " injected replays were never detected");
      return;
    }
    if (audit_links_acc_ + mediator_->counters().audit_links_committed == 0) {
      fail("audit-quiesce",
           "audit=1 run committed no chain links — the machinery never ran");
      return;
    }
    verify_open_clean("audit-quiesce");
  }

  // ----- crash seams -----

  void exec_crash(const SimOp& op) {
    // Needs durable state on both sides. Sharded runs exercise provider
    // crashes through kShardCrash instead (store seams would fire inside a
    // shard's FileStore, which the shard-crash op covers directly).
    if (!cfg_.journal || !cfg_.persist || sharded()) return;
    std::vector<const char*> seams(std::begin(kJournalSeams),
                                   std::end(kJournalSeams));
    seams.insert(seams.end(), std::begin(kStoreSeams), std::end(kStoreSeams));
    if (cfg_.audit) {
      // The auditor's chain-head log has its own write-ahead seams: a
      // crash between staging a link and the save must never lose (or
      // double-apply) the head.
      seams.insert(seams.end(), std::begin(kAuditSeams),
                   std::end(kAuditSeams));
    }
    const char* seam = seams[op.arg % seams.size()];

    SimOp edit;
    edit.kind = SimOpKind::kInsert;
    edit.pos_ppm = 1'000'000;
    edit.len = op.arg % 5 + 1;
    edit.cls = TextClass::kWords;
    edit.arg = op.arg;
    const Splice s = make_splice(edit);
    const std::string before = model_;
    std::string after = model_;
    after.replace(s.pos, s.del, s.text);

    CrashPoints::arm(seam, 1);
    bool crashed = false;
    try {
      send_splice(s, false);
    } catch (const CrashError&) {
      crashed = true;
    }
    CrashPoints::disarm();
    if (!crashed) return;  // seam not reached before the op completed

    ++rep_.cov.crashes_fired;
    ++epoch_;
    build_world();  // power loss: everything volatile is gone
    net::HttpResponse resp;
    try {
      resp = open_request();  // replays the journal (revision CAS)
    } catch (const Error& e) {
      fail("crash-recovery", std::string("open after crash threw: ") + e.what());
      return;
    }
    if (!resp.ok()) {
      fail("crash-recovery",
           "open after crash: HTTP " + std::to_string(resp.status));
      return;
    }
    const FormData reply = FormData::parse(resp.body);
    const std::string content = reply.get("content").value_or("");
    if (content != before && content != after) {
      fail("crash-divergence",
           "recovered document (" + std::to_string(content.size()) +
               " bytes) is neither the pre-crash (" +
               std::to_string(before.size()) + ") nor the attempted (" +
               std::to_string(after.size()) + ") state [seam " + seam + "]");
      return;
    }
    model_ = content;
    rev_ = parse_rev_field(reply.get("rev"));
    undo_.clear();
    ++rep_.cov.crashes_recovered;
    check_model();
  }

  // ----- storage integrity -----

  std::string store_dir() const {
    namespace fs = std::filesystem;
    return (fs::path(cfg_.work_dir) / "store").string();
  }

  /// fsck configuration matching this run: journal anchors when the
  /// journal is on, plus full decrypt validation (cheap here — the sim's
  /// KDF iteration count is deliberately tiny).
  cloud::CheckConfig store_check_config() const {
    cloud::CheckConfig cc;
    if (cfg_.journal) {
      namespace fs = std::filesystem;
      cc.anchors = extension::load_journal_anchors(
          (fs::path(cfg_.work_dir) / "journal").string());
    }
    cc.deep_validate = [this](const std::string& content) {
      try {
        extension::DocumentSession::open(
            cfg_.password, content,
            extension::seeded_rng_factory(cfg_.seed ^ 0xf5c8ULL));
        return true;
      } catch (const Error&) {
        return false;
      }
    };
    if (cfg_.audit) {
      // Structural chain check over the audit sidecar: revisions ascend
      // and the stored tip speaks for the stored record (kChainBreak
      // findings otherwise).
      namespace fs = std::filesystem;
      const std::string sidecar_dir = store_dir() + "/.audit";
      if (fs::is_directory(sidecar_dir)) {
        const cloud::FileStore sidecar(sidecar_dir);
        for (const auto& [id, record] : sidecar.load_all()) {
          const std::string chain =
              FormData::parse(record.content).get("chain").value_or("");
          if (!chain.empty()) cc.chains[id] = chain;
        }
      }
    }
    return cc;
  }

  cloud::CheckReport run_store_check() const {
    cloud::FileStore store(store_dir());
    return cloud::check_store(store, store_check_config());
  }

  /// Storage adversary: rot the document's on-disk record (rev line or a
  /// content byte), restart the provider on the damaged store, and require
  /// that fsck detects the rot where detection is possible — then repair
  /// through the cmd=sync push and require a clean re-check plus model
  /// equivalence.
  void exec_store_rot(const SimOp& op) {
    // Classic-topology op: it reaches straight into work_dir/store. Sharded
    // runs get their storage adversary from crash/rebalance instead.
    if (!cfg_.persist || offline_now() || sharded()) return;
    const auto raw = server_->raw_content(kDocId);
    if (!raw || raw->empty()) return;
    const std::string good = *raw;

    namespace fs = std::filesystem;
    const std::string path =
        (fs::path(store_dir()) /
         (hex_encode(as_bytes(std::string(kDocId))) + ".doc"))
            .string();
    std::string bytes;
    {
      std::ifstream in(path, std::ios::binary);
      if (!in.good()) return;
      std::ostringstream buf;
      buf << in.rdbuf();
      bytes = buf.str();
    }
    if (bytes.empty()) return;
    const bool rot_rev_line = op.arg % 4 == 0;
    if (rot_rev_line) {
      bytes[0] = 'x';  // the rev line no longer parses: unreadable record
    } else {
      const std::size_t nl = bytes.find('\n');
      if (nl == std::string::npos || nl + 1 >= bytes.size()) return;
      const std::size_t at = nl + 1 + op.arg % (bytes.size() - nl - 1);
      bytes[at] = flip_char(bytes[at], op.arg >> 8);
    }
    {
      // Deliberately non-atomic: this is the adversary, not the SUT.
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << bytes;
    }
    ++rep_.cov.store_rots_injected;

    // Provider restart on the damaged store (tolerant load: an unreadable
    // record quarantines the doc instead of killing the boot).
    ++epoch_;
    build_world();

    const cloud::CheckReport report = run_store_check();
    // Detection is REQUIRED when the damage is structural (rev line), when
    // the journal anchor can expose a byte change (checksum mismatch at
    // the acked revision), or when RPC's cryptographic integrity must
    // reject the container. Outside those, a flipped ciphertext byte in a
    // confidentiality-only mode can legitimately decode to garbage.
    const bool must_detect =
        rot_rev_line || cfg_.journal || cfg_.mode == enc::Mode::kRpc;
    if (!report.store_clean()) {
      ++rep_.cov.store_rots_detected;
    } else if (must_detect) {
      fail("store-rot-undetected",
           std::string("fsck reported a rotted store clean (") +
               (rot_rev_line ? "rev line" : "content byte") + ", " +
               op.to_wire() + ")");
      return;
    }

    // Repair = the replica anti-entropy push (cmd=sync with the good
    // bytes), which also lifts a boot quarantine after validation.
    heal(good);
    if (!rep_.ok) return;
    const cloud::CheckReport post = run_store_check();
    if (!post.store_clean()) {
      fail("store-rot-unrepaired",
           "fsck still dirty after repair: " +
               std::string(cloud::finding_kind_name(
                   post.findings.front().kind)) +
               " — " + post.findings.front().detail);
      return;
    }
    ++rep_.cov.store_rots_repaired;
  }

  /// End-of-run invariant for persist runs: after quiesce the store must
  /// check completely clean — structure, decrypt, and journal anchors.
  void store_quiesce_check() {
    const cloud::CheckReport report = run_store_check();
    if (!report.store_clean()) {
      fail("store-quiesce",
           "store dirty at quiesce: " +
               std::string(
                   cloud::finding_kind_name(report.findings.front().kind)) +
               " — " + report.findings.front().detail);
    }
  }

  // ----- failure bookkeeping -----

  void fail(const std::string& id, const std::string& message) {
    if (!rep_.ok) return;  // first failure wins
    rep_.ok = false;
    rep_.failure_id = id;
    rep_.message = message;
    rep_.failed_at_op = current_op_;
  }

  struct Snapshot {
    std::uint64_t rev = 0;
    std::string content;
    std::string achain;  // audit chain wire at that rev (audit runs)
    std::map<std::string, std::string> witnesses;  // served witness set
  };

  const SimConfig& cfg_;
  const Script& script_;
  SimReport rep_;

  net::SimClock clock_;
  std::unique_ptr<cloud::GDocsServer> server_;  // classic topology
  std::unique_ptr<cloud::ShardRouter> router_;  // sharded topology
  std::map<std::string, std::string> fixtures_;  // doc id -> reference bytes
  std::unique_ptr<net::LoopbackTransport> loop_;
  std::unique_ptr<net::FaultyChannel> faulty_;
  std::unique_ptr<net::RetryChannel> retry_;
  std::unique_ptr<extension::GDocsMediator> mediator_;
  std::unique_ptr<extension::DocumentAuditor> b_auditor_;  // client B (audit)

  std::string model_;  // the reference: a plain byte string
  std::uint64_t rev_ = 0;
  std::deque<Splice> undo_;       // inverse splices, most recent last
  std::deque<Snapshot> snapshots_;  // older acked states (rollback fodder)
  std::uint64_t epoch_ = 0;       // bumped per world rebuild
  std::size_t current_op_ = 0;
  // Audit counters banked across world rebuilds (crashes reset the
  // mediator, not the run's evidence).
  std::size_t audit_links_acc_ = 0;
  std::size_t audit_retries_acc_ = 0;
  std::size_t witnesses_acc_ = 0;
};

}  // namespace

SimReport run_script(const SimConfig& config, const Script& script) {
  return Runner(config, script).run();
}

SimReport run_sim(const SimConfig& config) {
  return run_script(config, generate_script(config));
}

}  // namespace privedit::sim
