#pragma once
// SimOp / Script — the serialisable op language of the simulation harness.
//
// A script is the *entire* input of a simulation run: every edit, every
// adversary action and every crash is one SimOp. Ops carry no absolute
// document positions — positions are selectors (parts-per-million of the
// current document length, optionally snapped to a block boundary) resolved
// at execution time, so any subsequence of a failing script is itself a
// well-formed script. That property is what makes delta-debugging
// (sim/shrink.hpp) a plain subsequence search.
//
// The wire form is a single shell-safe line (`i:b500000:12:w:7781;d:0:3`),
// printed as part of every failure's repro command and parsed back by the
// SimRepro test, so a shrunk counterexample reproduces from a copy-paste.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace privedit::sim {

enum class SimOpKind : std::uint8_t {
  kInsert,      // i:POS:LEN:CLS:ARG     insert LEN chars of CLS at POS
  kErase,       // d:POS:LEN             delete up to LEN chars at POS
  kReplace,     // r:POS:LEN:ILEN:CLS:ARG delete LEN, insert ILEN at POS
  kReplaceAll,  // R:LEN:CLS:ARG         whole-document replace (full save)
  kUndo,        // u                     undo the most recent edit
  kReopen,      // o                     cmd=open through the mediator
  kTamperFlip,  // tf:ARG                flip one stored ciphertext char
  kTamperSwap,  // ts:ARG:ARG2           swap two container units
  kTamperDrop,  // td:ARG                remove one container unit
  kTamperDup,   // tp:ARG                duplicate one container unit
  kRollback,    // kb                    serve an older acknowledged state
  kFork,        // kf                    different bytes at the acked revision
  kCrash,       // c:ARG                 arm a crash seam, then edit
  kStoreRot,    // sc:ARG                rot the on-disk record, restart, fsck
  kShardCrash,      // sk:ARG            kill shard ARG%N, then restart it
  kShardRebalance,  // sr:ARG            drain shard ARG%N out, join it back
  kPeerEdit,         // be:ARG           benign client-B edit + witness
  kEquivocate,       // ke:ARG           hide B's write: fork the history
  kWitnessSuppress,  // kw               drop client A's served witness
  kReplay,           // kp               re-serve an old (rev,content,chain)
};

/// Insert-payload character classes. The mix is chosen to hit the update
/// paths the related deployments report as fragile: multi-byte UTF-8
/// sequences that straddle block boundaries, delta-metacharacters that
/// stress wire escaping, and empty payloads.
enum class TextClass : std::uint8_t {
  kWords = 0,    // 'w' — English-ish words
  kRun = 1,      // 'x' — a run of one repeated character
  kUnicode = 2,  // 'u' — multi-byte UTF-8 code points
  kSpecial = 3,  // 't' — tabs, backslashes, '&', '=', '%', newlines, quotes
  kEmpty = 4,    // 'e' — zero-length payload
};

struct SimOp {
  SimOpKind kind = SimOpKind::kInsert;
  std::uint32_t pos_ppm = 0;  // position selector in [0, 1'000'000]
  bool snap = false;          // snap the resolved position to a block boundary
  std::uint32_t len = 0;      // delete length / insert length (code points)
  std::uint32_t len2 = 0;     // replace: insert length
  TextClass cls = TextClass::kWords;
  std::uint32_t arg = 0;      // payload seed / unit index / seam index
  std::uint32_t arg2 = 0;     // second unit index (kTamperSwap)

  std::string to_wire() const;
  static SimOp parse(std::string_view wire);

  bool operator==(const SimOp&) const = default;
};

struct Script {
  std::vector<SimOp> ops;

  /// One line, ops joined by ';'. Empty script -> empty string.
  std::string to_wire() const;
  static Script parse(std::string_view wire);

  bool operator==(const Script&) const = default;
};

/// Deterministic insert payload for an op: a function of (cls, arg, len)
/// only, so the same op yields the same text in any script position.
/// `len` counts code points; the returned string may be longer in bytes.
std::string op_text(TextClass cls, std::uint32_t arg, std::uint32_t len);

}  // namespace privedit::sim
