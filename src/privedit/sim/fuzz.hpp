#pragma once
// Byte-level fuzz entry points over the four parse surfaces an attacker
// (or a corrupted disk/wire) feeds directly: the delta wire language, the
// ciphertext container, the write-ahead journal file, and HTTP framing.
//
// Each entry point treats privedit's own error taxonomy as a *correct*
// rejection and returns normally; a genuine invariant violation (a parser
// that accepts garbage and then misbehaves, a round trip that is not a
// fixed point) throws FuzzCheckFailure. The standalone fuzz drivers
// (fuzz/, built under -DPRIVEDIT_FUZZ=ON) let that escape and crash the
// process so the fuzzer saves the input; the in-tree corpus regression
// test asserts EXPECT_NO_THROW over tests/corpus/ instead.

#include <stdexcept>
#include <string>
#include <string_view>

namespace privedit::sim {

/// An invariant the fuzzed component must uphold was violated. NOT part of
/// the privedit::Error taxonomy on purpose: nothing in the library throws
/// or catches it, so it always escapes to the harness.
class FuzzCheckFailure : public std::logic_error {
 public:
  explicit FuzzCheckFailure(const std::string& what)
      : std::logic_error(what) {}
};

/// Delta wire text: parse / serialise fixed point, apply on a document of
/// exactly input_span() length, invert round trip, canonical idempotence.
void fuzz_delta(std::string_view data);

/// Ciphertext container: tag/header validation, unit arithmetic, and (for
/// cheap-KDF headers) a full DocumentSession::open.
void fuzz_container(std::string_view data);

/// Journal file bytes: load (torn-tail recovery), then an append/reload
/// round trip on the recovered state. Writes a scratch file under
/// `scratch_dir` (caller-provided temp directory).
void fuzz_journal(std::string_view data, const std::string& scratch_dir);

/// HTTP request and response framing: parse / serialise round trips.
void fuzz_http(std::string_view data);

/// Block-delta wire language (enc/block_wire.hpp) and the copy-add codec
/// behind it: attacker bytes must parse loudly-or-fixed-point (and apply
/// within declared bounds must reject or honour the anchors); the bytes
/// reinterpreted as a (source, target) pair must round trip through both
/// encoders, the in-place applier, and the digest wire form.
void fuzz_diff(std::string_view data);

/// Store record file bytes: written as a document file (plus a sibling
/// stale *.tmp), then opened through FileStore — the sweep must discard
/// the temp, get() must return or reject loudly, check_store must
/// classify without crashing, and a readable record must survive a
/// put/get round trip. Writes scratch files under `scratch_dir`.
void fuzz_store_record(std::string_view data, const std::string& scratch_dir);

}  // namespace privedit::sim
