#include "privedit/sim/gen.hpp"

#include <array>

#include "privedit/util/random.hpp"

namespace privedit::sim {
namespace {

/// Geometric-ish edit length in [1, max]: short edits dominate (typing),
/// with a heavy-enough tail to span several blocks.
std::uint32_t edit_len(RandomSource& rng, std::uint32_t max) {
  std::uint32_t len = 1;
  while (len < max && rng.chance(0.70)) {
    len += static_cast<std::uint32_t>(rng.below(4)) + 1;
  }
  return len > max ? max : len;
}

TextClass pick_class(RandomSource& rng) {
  const std::uint64_t roll = rng.below(100);
  if (roll < 45) return TextClass::kWords;
  if (roll < 55) return TextClass::kRun;
  if (roll < 78) return TextClass::kUnicode;
  return TextClass::kSpecial;
}

/// Position selector: usually uniform, sometimes pinned to an end, with a
/// config-weighted chance of snapping to a block boundary at execution.
void pick_pos(RandomSource& rng, const GenWeights& w, SimOp& op) {
  if (rng.chance(w.append_bias)) {
    op.pos_ppm = 1'000'000;  // end of document
  } else if (rng.chance(0.05)) {
    op.pos_ppm = 0;  // start of document
  } else {
    op.pos_ppm = static_cast<std::uint32_t>(rng.below(1'000'001));
  }
  op.snap = rng.chance(w.boundary_bias);
}

}  // namespace

Script generate_script(const SimConfig& config) {
  Xoshiro256 rng(config.seed * 0x9e3779b97f4a7c15ULL + 1);
  const GenWeights& w = config.weights;

  struct Entry {
    double weight;
    SimOpKind kind;
  };
  const std::array<Entry, 20> table = {{
      {w.insert, SimOpKind::kInsert},
      {w.erase, SimOpKind::kErase},
      {w.replace, SimOpKind::kReplace},
      {w.replace_all, SimOpKind::kReplaceAll},
      {w.undo, SimOpKind::kUndo},
      {w.reopen, SimOpKind::kReopen},
      {w.tamper, SimOpKind::kTamperFlip},
      {w.tamper / 2, SimOpKind::kTamperSwap},
      {w.tamper / 3, SimOpKind::kTamperDrop},
      {w.tamper / 3, SimOpKind::kTamperDup},
      {w.rollback, SimOpKind::kRollback},
      {w.fork, SimOpKind::kFork},
      {w.crash, SimOpKind::kCrash},
      {w.store_rot, SimOpKind::kStoreRot},
      {w.shard_crash, SimOpKind::kShardCrash},
      {w.shard_rebalance, SimOpKind::kShardRebalance},
      {w.peer_edit, SimOpKind::kPeerEdit},
      {w.equivocate, SimOpKind::kEquivocate},
      {w.witness_suppress, SimOpKind::kWitnessSuppress},
      {w.replay, SimOpKind::kReplay},
  }};
  double total = 0;
  for (const Entry& e : table) total += e.weight;

  Script script;
  script.ops.reserve(config.ops);
  for (std::size_t i = 0; i < config.ops; ++i) {
    // Weighted pick via a 1e9-grain roll so generation stays integer-only.
    double roll = static_cast<double>(rng.below(1'000'000'000)) / 1e9 * total;
    SimOpKind kind = SimOpKind::kInsert;
    for (const Entry& e : table) {
      if (roll < e.weight) {
        kind = e.kind;
        break;
      }
      roll -= e.weight;
    }

    SimOp op;
    op.kind = kind;
    switch (kind) {
      case SimOpKind::kInsert:
        pick_pos(rng, w, op);
        op.cls = pick_class(rng);
        op.len = rng.chance(w.empty_bias) ? 0 : edit_len(rng, w.max_edit);
        op.arg = static_cast<std::uint32_t>(rng.next_u64());
        break;
      case SimOpKind::kErase:
        pick_pos(rng, w, op);
        op.len = rng.chance(w.empty_bias) ? 0 : edit_len(rng, w.max_edit);
        break;
      case SimOpKind::kReplace:
        pick_pos(rng, w, op);
        op.cls = pick_class(rng);
        op.len = edit_len(rng, w.max_edit);
        op.len2 = rng.chance(w.empty_bias) ? 0 : edit_len(rng, w.max_edit);
        op.arg = static_cast<std::uint32_t>(rng.next_u64());
        break;
      case SimOpKind::kReplaceAll:
        op.cls = pick_class(rng);
        op.len = edit_len(rng, w.max_edit) * 4;
        op.arg = static_cast<std::uint32_t>(rng.next_u64());
        break;
      case SimOpKind::kUndo:
      case SimOpKind::kReopen:
      case SimOpKind::kRollback:
      case SimOpKind::kFork:
      case SimOpKind::kWitnessSuppress:
      case SimOpKind::kReplay:
        break;
      case SimOpKind::kTamperFlip:
      case SimOpKind::kTamperDrop:
      case SimOpKind::kTamperDup:
        op.arg = static_cast<std::uint32_t>(rng.next_u64());
        break;
      case SimOpKind::kTamperSwap:
        op.arg = static_cast<std::uint32_t>(rng.next_u64());
        op.arg2 = static_cast<std::uint32_t>(rng.next_u64());
        break;
      case SimOpKind::kCrash:
      case SimOpKind::kStoreRot:
      case SimOpKind::kShardCrash:
      case SimOpKind::kShardRebalance:
      case SimOpKind::kPeerEdit:
      case SimOpKind::kEquivocate:
        op.arg = static_cast<std::uint32_t>(rng.next_u64());
        break;
    }
    script.ops.push_back(op);
  }
  return script;
}

}  // namespace privedit::sim
