#pragma once
// Internal: streaming cursor over a delta's ops that serves them in
// arbitrary slices, treating the language's implicit trailing retain as an
// unbounded retain. Shared by compose() and transform().

#include <string_view>

#include "privedit/delta/delta.hpp"

namespace privedit::delta::detail {

class OpStream {
 public:
  explicit OpStream(const Delta& d) : ops_(d.ops()) {}

  bool exhausted() const { return index_ >= ops_.size(); }

  OpKind kind() const {
    return exhausted() ? OpKind::kRetain : ops_[index_].kind;
  }

  /// Characters left in the current op (SIZE_MAX for the implicit tail).
  std::size_t remaining() const {
    if (exhausted()) return SIZE_MAX;
    return ops_[index_].count - offset_;
  }

  /// Slice of the current insert op's text.
  std::string_view text(std::size_t n) const {
    return std::string_view(ops_[index_].text).substr(offset_, n);
  }

  void advance(std::size_t n) {
    if (exhausted()) return;
    offset_ += n;
    if (offset_ >= ops_[index_].count) {
      ++index_;
      offset_ = 0;
    }
  }

  /// Skips zero-length ops so kind() is meaningful.
  void normalize() {
    while (!exhausted() && ops_[index_].count == 0) {
      ++index_;
      offset_ = 0;
    }
  }

 private:
  const std::vector<Op>& ops_;
  std::size_t index_ = 0;
  std::size_t offset_ = 0;
};

}  // namespace privedit::delta::detail
