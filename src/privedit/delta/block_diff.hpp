#pragma once
// Ciphertext-block differential compression (ROADMAP item 3).
//
// A BlockDelta rewrites one byte string (the *source*) into another (the
// *target*) as a tiling of copy/add commands — the onepass copy-add family:
// the encoder hashes the source's aligned blocks once, then scans the
// target with a rolling checksum, emitting Copy for runs the source already
// holds and Add for literal bytes it lacks. Unlike delta::Delta (a
// plaintext edit language), a BlockDelta is computed between two opaque
// byte strings with no knowledge of keys or structure, which is what lets
// it compress ciphertext containers: the client's save path, anti-entropy
// repair, and journal compaction all move containers whose unedited blocks
// are byte-identical.
//
// Two encoders share the matcher:
//   block_diff              — both strings in hand; candidates are verified
//                             bytewise and extended maximally in both
//                             directions, so a match is never wrong.
//   block_diff_from_digests — only the source's per-block digests are known
//                             (the lagging replica sent them); matches are
//                             whole aligned blocks and cannot be verified,
//                             so apply re-checks the whole-target CRC and
//                             rejects any digest-collision damage.
//
// Apply comes in an out-of-place form and an in-place form
// (apply_block_delta_inplace): the latter reconstructs the target inside
// the source buffer by executing copies in read-before-write order,
// breaking dependency cycles by materialising one copy's source into
// bounded scratch — memory stays O(commands + largest cycle op) instead of
// a second full document.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace privedit::delta {

struct BlockOp {
  enum class Kind : std::uint8_t { kCopy, kAdd };
  Kind kind = Kind::kAdd;
  std::uint64_t src_off = 0;  // kCopy: byte offset into the source
  std::uint64_t len = 0;      // kCopy length; kAdd: literal.size()
  std::string literal;        // kAdd payload

  static BlockOp copy(std::uint64_t off, std::uint64_t n) {
    return BlockOp{Kind::kCopy, off, n, {}};
  }
  static BlockOp add(std::string s);

  bool operator==(const BlockOp&) const = default;
};

/// A copy/add tiling of the target, anchored to the exact source it was
/// computed against (size + CRC) and carrying the expected reconstruction
/// (size + CRC) so a stale base or a digest collision is detected at apply.
struct BlockDelta {
  std::uint64_t source_size = 0;
  std::uint64_t target_size = 0;
  std::uint32_t source_crc = 0;
  std::uint32_t target_crc = 0;
  std::vector<BlockOp> ops;

  /// Bytes the target reuses from the source / ships as literals.
  std::uint64_t copied_bytes() const;
  std::uint64_t added_bytes() const;

  bool operator==(const BlockDelta&) const = default;
};

/// Default matcher granularity for the local (both-strings) encoder.
inline constexpr std::size_t kDefaultBlockSize = 64;

/// 64-bit per-block digest for the repair digest exchange: the rolling
/// rsync-style weak sum in the high half (so the remote encoder can slide
/// it over the target) and crc32 of the block in the low half. Collisions
/// are caught by the whole-target CRC at apply time.
std::uint64_t block_digest(std::string_view block);

/// Digests of `data`'s aligned blocks (the final block may be short).
/// Throws Error(kInvalidArgument) when block_size is 0.
std::vector<std::uint64_t> block_digests(std::string_view data,
                                         std::size_t block_size);

/// Digest-exchange block size for a document of `content_size` bytes:
/// targets ~64 blocks so the probe response stays ~1 KB, clamped to
/// [kDefaultBlockSize, 4096].
std::size_t repair_block_size(std::size_t content_size);

/// One-pass copy-add encoder over two in-hand strings. Matches are
/// byte-verified and extended past block granularity in both directions.
BlockDelta block_diff(std::string_view source, std::string_view target,
                      std::size_t block_size = kDefaultBlockSize);

/// Encoder against a source known only by its aligned-block digests (and
/// total size). Copies cover whole source blocks; source_crc is left 0 for
/// the caller to stamp from the probe response.
BlockDelta block_diff_from_digests(
    const std::vector<std::uint64_t>& source_digests,
    std::uint64_t source_size, std::string_view target,
    std::size_t block_size);

/// Reconstructs the target. Throws Error(kInvalidArgument) when `source`
/// does not match the delta's (source_size, source_crc) anchor, ParseError
/// when the command tiling is internally inconsistent, and IntegrityError
/// when the reconstruction misses target_crc (digest collision or a
/// tampered delta).
std::string apply_block_delta(const BlockDelta& delta,
                              std::string_view source);

/// In-place variant: `doc` holds the source on entry, the target on exit.
/// Same error contract; on throw, `doc` is left unspecified.
void apply_block_delta_inplace(const BlockDelta& delta, std::string& doc);

}  // namespace privedit::delta
