#include "privedit/delta/block_diff.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "privedit/util/bytes.hpp"
#include "privedit/util/crc32.hpp"
#include "privedit/util/error.hpp"

namespace privedit::delta {
namespace {

/// rsync-style 32-bit weak checksum over a fixed window: the byte sum in
/// the low half and the position-weighted sum in the high half, both mod
/// 2^16, so the window can slide one byte in O(1).
class RollingSum {
 public:
  void init(std::string_view window) {
    a_ = b_ = 0;
    len_ = static_cast<std::uint32_t>(window.size());
    for (std::size_t i = 0; i < window.size(); ++i) {
      const auto x = static_cast<std::uint8_t>(window[i]);
      a_ += x;
      b_ += static_cast<std::uint32_t>(window.size() - i) * x;
    }
  }

  void roll(char out, char in) {
    const auto xo = static_cast<std::uint32_t>(static_cast<std::uint8_t>(out));
    const auto xi = static_cast<std::uint32_t>(static_cast<std::uint8_t>(in));
    a_ = a_ - xo + xi;
    b_ = b_ - len_ * xo + a_;
  }

  std::uint32_t value() const {
    return (a_ & 0xffffu) | ((b_ & 0xffffu) << 16);
  }

 private:
  std::uint32_t a_ = 0;
  std::uint32_t b_ = 0;
  std::uint32_t len_ = 0;
};

std::uint32_t weak_sum(std::string_view window) {
  RollingSum s;
  s.init(window);
  return s.value();
}

void require_block_size(std::size_t block_size) {
  if (block_size == 0) {
    throw Error(ErrorCode::kInvalidArgument, "block diff: block size 0");
  }
}

/// Appends a copy command, coalescing with a source-contiguous predecessor.
void emit_copy(BlockDelta& delta, std::uint64_t src_off, std::uint64_t len) {
  if (len == 0) return;
  if (!delta.ops.empty()) {
    BlockOp& last = delta.ops.back();
    if (last.kind == BlockOp::Kind::kCopy &&
        last.src_off + last.len == src_off) {
      last.len += len;
      return;
    }
  }
  delta.ops.push_back(BlockOp::copy(src_off, len));
}

void emit_add(BlockDelta& delta, std::string&& literal) {
  if (literal.empty()) return;
  delta.ops.push_back(BlockOp::add(std::move(literal)));
}

/// Shared structural validation for both apply paths: the command tiling
/// must cover the declared target exactly and read inside the declared
/// source. Throws ParseError (a malformed delta is wire-shaped data).
void check_tiling(const BlockDelta& delta) {
  std::uint64_t produced = 0;
  for (const BlockOp& op : delta.ops) {
    if (op.len == 0) throw ParseError("block delta: zero-length command");
    if (op.kind == BlockOp::Kind::kCopy) {
      if (op.src_off > delta.source_size ||
          op.len > delta.source_size - op.src_off) {
        throw ParseError("block delta: copy outside the source");
      }
    } else if (op.literal.size() != op.len) {
      throw ParseError("block delta: add length/literal mismatch");
    }
    if (op.len > delta.target_size - produced) {
      throw ParseError("block delta: commands overrun the target");
    }
    produced += op.len;
  }
  if (produced != delta.target_size) {
    throw ParseError("block delta: commands underrun the target");
  }
}

void check_source_anchor(const BlockDelta& delta, std::string_view source) {
  if (source.size() != delta.source_size ||
      crc32(as_bytes(source)) != delta.source_crc) {
    throw Error(ErrorCode::kInvalidArgument,
                "block delta: source does not match the delta's base");
  }
}

void check_target(const BlockDelta& delta, std::string_view result) {
  if (result.size() != delta.target_size ||
      crc32(as_bytes(result)) != delta.target_crc) {
    throw IntegrityError("block delta: reconstruction failed the target CRC");
  }
}

}  // namespace

BlockOp BlockOp::add(std::string s) {
  BlockOp op;
  op.kind = Kind::kAdd;
  op.len = s.size();
  op.literal = std::move(s);
  return op;
}

std::uint64_t BlockDelta::copied_bytes() const {
  std::uint64_t n = 0;
  for (const BlockOp& op : ops) {
    if (op.kind == BlockOp::Kind::kCopy) n += op.len;
  }
  return n;
}

std::uint64_t BlockDelta::added_bytes() const {
  std::uint64_t n = 0;
  for (const BlockOp& op : ops) {
    if (op.kind == BlockOp::Kind::kAdd) n += op.len;
  }
  return n;
}

std::uint64_t block_digest(std::string_view block) {
  return (static_cast<std::uint64_t>(weak_sum(block)) << 32) |
         crc32(as_bytes(block));
}

std::vector<std::uint64_t> block_digests(std::string_view data,
                                         std::size_t block_size) {
  require_block_size(block_size);
  std::vector<std::uint64_t> out;
  out.reserve(data.size() / block_size + 1);
  for (std::size_t off = 0; off < data.size(); off += block_size) {
    out.push_back(
        block_digest(data.substr(off, std::min(block_size,
                                               data.size() - off))));
  }
  return out;
}

std::size_t repair_block_size(std::size_t content_size) {
  return std::clamp<std::size_t>(content_size / 64, kDefaultBlockSize, 4096);
}

BlockDelta block_diff(std::string_view source, std::string_view target,
                      std::size_t block_size) {
  require_block_size(block_size);
  BlockDelta d;
  d.source_size = source.size();
  d.target_size = target.size();
  d.source_crc = crc32(as_bytes(source));
  d.target_crc = crc32(as_bytes(target));
  if (target.empty()) return d;
  if (source.size() < block_size || target.size() < block_size) {
    emit_add(d, std::string(target));
    return d;
  }

  // Weak sum of every full aligned source block -> block indices. The
  // short tail block is reachable through forward extension of the match
  // that precedes it.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> table;
  table.reserve(source.size() / block_size + 1);
  for (std::size_t off = 0; off + block_size <= source.size();
       off += block_size) {
    table[weak_sum(source.substr(off, block_size))].push_back(
        static_cast<std::uint32_t>(off / block_size));
  }

  std::string pending;  // literal bytes accumulated since the last match
  std::size_t pos = 0;
  RollingSum roll;
  roll.init(target.substr(0, block_size));
  while (pos + block_size <= target.size()) {
    bool matched = false;
    if (const auto it = table.find(roll.value()); it != table.end()) {
      for (const std::uint32_t index : it->second) {
        std::size_t src_begin = static_cast<std::size_t>(index) * block_size;
        if (std::memcmp(source.data() + src_begin, target.data() + pos,
                        block_size) != 0) {
          continue;
        }
        // Extend backward into the pending literal, then forward past
        // block granularity — matches are maximal runs, not just blocks.
        while (src_begin > 0 && !pending.empty() &&
               source[src_begin - 1] == pending.back()) {
          --src_begin;
          pending.pop_back();
        }
        std::size_t src_end = static_cast<std::size_t>(index) * block_size +
                              block_size;
        std::size_t tgt_end = pos + block_size;
        while (src_end < source.size() && tgt_end < target.size() &&
               source[src_end] == target[tgt_end]) {
          ++src_end;
          ++tgt_end;
        }
        emit_add(d, std::move(pending));
        pending.clear();
        emit_copy(d, src_begin, src_end - src_begin);
        pos = tgt_end;
        if (pos + block_size <= target.size()) {
          roll.init(target.substr(pos, block_size));
        }
        matched = true;
        break;
      }
    }
    if (!matched) {
      pending += target[pos];
      if (pos + block_size < target.size()) {
        roll.roll(target[pos], target[pos + block_size]);
      }
      ++pos;
    }
  }
  pending.append(target.substr(pos));
  emit_add(d, std::move(pending));
  return d;
}

BlockDelta block_diff_from_digests(
    const std::vector<std::uint64_t>& source_digests,
    std::uint64_t source_size, std::string_view target,
    std::size_t block_size) {
  require_block_size(block_size);
  BlockDelta d;
  d.source_size = source_size;
  d.target_size = target.size();
  d.source_crc = 0;  // the caller stamps this from the probe response
  d.target_crc = crc32(as_bytes(target));
  if (target.empty()) return d;
  const std::size_t full_blocks = std::min<std::size_t>(
      source_digests.size(), static_cast<std::size_t>(source_size) /
                                 block_size);
  if (full_blocks == 0 || target.size() < block_size) {
    emit_add(d, std::string(target));
    return d;
  }

  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> table;
  table.reserve(full_blocks);
  for (std::size_t i = 0; i < full_blocks; ++i) {
    table[static_cast<std::uint32_t>(source_digests[i] >> 32)].push_back(
        static_cast<std::uint32_t>(i));
  }

  std::string pending;
  std::size_t pos = 0;
  RollingSum roll;
  roll.init(target.substr(0, block_size));
  while (pos + block_size <= target.size()) {
    bool matched = false;
    if (const auto it = table.find(roll.value()); it != table.end()) {
      for (const std::uint32_t index : it->second) {
        // Confirm on the strong half. The source bytes are not in hand, so
        // this can still be a collision — apply's target CRC is the net.
        if (static_cast<std::uint32_t>(source_digests[index]) !=
            crc32(as_bytes(target.substr(pos, block_size)))) {
          continue;
        }
        emit_add(d, std::move(pending));
        pending.clear();
        emit_copy(d, static_cast<std::uint64_t>(index) * block_size,
                  block_size);
        pos += block_size;
        if (pos + block_size <= target.size()) {
          roll.init(target.substr(pos, block_size));
        }
        matched = true;
        break;
      }
    }
    if (!matched) {
      pending += target[pos];
      if (pos + block_size < target.size()) {
        roll.roll(target[pos], target[pos + block_size]);
      }
      ++pos;
    }
  }
  pending.append(target.substr(pos));
  emit_add(d, std::move(pending));
  return d;
}

std::string apply_block_delta(const BlockDelta& delta,
                              std::string_view source) {
  check_source_anchor(delta, source);
  check_tiling(delta);
  std::string out;
  out.reserve(static_cast<std::size_t>(delta.target_size));
  for (const BlockOp& op : delta.ops) {
    if (op.kind == BlockOp::Kind::kCopy) {
      out.append(source.substr(static_cast<std::size_t>(op.src_off),
                               static_cast<std::size_t>(op.len)));
    } else {
      out.append(op.literal);
    }
  }
  check_target(delta, out);
  return out;
}

void apply_block_delta_inplace(const BlockDelta& delta, std::string& doc) {
  check_source_anchor(delta, doc);
  check_tiling(delta);

  struct Copy {
    std::size_t dst;
    std::size_t src;
    std::size_t len;
    std::string scratch;  // non-empty once the copy was cycle-broken
  };
  std::vector<Copy> copies;
  struct Add {
    std::size_t dst;
    const std::string* literal;
  };
  std::vector<Add> adds;
  std::size_t dst = 0;
  for (const BlockOp& op : delta.ops) {
    if (op.kind == BlockOp::Kind::kCopy) {
      copies.push_back(Copy{dst, static_cast<std::size_t>(op.src_off),
                            static_cast<std::size_t>(op.len), {}});
    } else {
      adds.push_back(Add{dst, &op.literal});
    }
    dst += static_cast<std::size_t>(op.len);
  }

  doc.resize(std::max(static_cast<std::size_t>(delta.source_size),
                      static_cast<std::size_t>(delta.target_size)));

  // Copy destinations tile disjoint target ranges, so the only hazard is a
  // copy clobbering bytes another pending copy still needs to read.
  // Execute copies whose write range overlaps no pending read range; when
  // every pending copy is blocked (a dependency cycle), materialise the
  // shortest one's source into scratch, which removes its read edge.
  std::vector<std::size_t> pending(copies.size());
  for (std::size_t i = 0; i < pending.size(); ++i) pending[i] = i;
  const auto overlaps = [](std::size_t a_begin, std::size_t a_len,
                           std::size_t b_begin, std::size_t b_len) {
    return a_begin < b_begin + b_len && b_begin < a_begin + a_len;
  };
  while (!pending.empty()) {
    bool progress = false;
    for (std::size_t p = 0; p < pending.size();) {
      const Copy& c = copies[pending[p]];
      bool safe = true;
      for (const std::size_t other : pending) {
        if (other == pending[p]) continue;
        const Copy& o = copies[other];
        if (o.scratch.empty() && overlaps(c.dst, c.len, o.src, o.len)) {
          safe = false;
          break;
        }
      }
      if (!safe) {
        ++p;
        continue;
      }
      Copy& run = copies[pending[p]];
      std::memmove(doc.data() + run.dst,
                   run.scratch.empty() ? doc.data() + run.src
                                       : run.scratch.data(),
                   run.len);
      run.scratch.clear();
      run.scratch.shrink_to_fit();
      pending[p] = pending.back();
      pending.pop_back();
      progress = true;
    }
    if (!progress) {
      // A blocked round always leaves a copy that still reads the doc: a
      // fully-scratched pending set has no read edges and cannot block.
      std::size_t victim = copies.size();
      for (const std::size_t idx : pending) {
        if (!copies[idx].scratch.empty()) continue;
        if (victim == copies.size() || copies[idx].len < copies[victim].len) {
          victim = idx;
        }
      }
      if (victim == copies.size()) {
        throw Error(ErrorCode::kState, "block delta: in-place apply stuck");
      }
      copies[victim].scratch.assign(doc.data() + copies[victim].src,
                                    copies[victim].len);
    }
  }

  for (const Add& a : adds) {
    std::memcpy(doc.data() + a.dst, a.literal->data(), a.literal->size());
  }
  doc.resize(static_cast<std::size_t>(delta.target_size));
  check_target(delta, doc);
}

}  // namespace privedit::delta
