#include <algorithm>
#include <vector>

#include "privedit/delta/delta.hpp"
#include "privedit/util/error.hpp"

namespace privedit::delta {
namespace {

struct Trimmed {
  std::size_t prefix;
  std::size_t suffix;
  std::string_view a;  // middle of `before`
  std::string_view b;  // middle of `after`
};

Trimmed trim_common(std::string_view before, std::string_view after) {
  std::size_t prefix = 0;
  const std::size_t max_prefix = std::min(before.size(), after.size());
  while (prefix < max_prefix && before[prefix] == after[prefix]) ++prefix;

  std::size_t suffix = 0;
  const std::size_t max_suffix = max_prefix - prefix;
  while (suffix < max_suffix &&
         before[before.size() - 1 - suffix] == after[after.size() - 1 - suffix]) {
    ++suffix;
  }
  return Trimmed{prefix, suffix,
                 before.substr(prefix, before.size() - prefix - suffix),
                 after.substr(prefix, after.size() - prefix - suffix)};
}

Delta replace_middle(const Trimmed& t) {
  Delta d;
  if (t.prefix > 0) d.push(Op::retain(t.prefix));
  if (!t.a.empty()) d.push(Op::erase(t.a.size()));
  if (!t.b.empty()) d.push(Op::insert(std::string(t.b)));
  return d.canonicalized();
}

}  // namespace

Delta affix_diff(std::string_view before, std::string_view after) {
  return replace_middle(trim_common(before, after));
}

Delta myers_diff(std::string_view before, std::string_view after,
                 std::size_t max_cost) {
  const Trimmed t = trim_common(before, after);
  const std::string_view a = t.a;
  const std::string_view b = t.b;
  const std::size_t n = a.size();
  const std::size_t m = b.size();

  if (n == 0 || m == 0) {
    return replace_middle(t);
  }
  if (n + m > max_cost) {
    // Myers is O((n+m)·D); for essentially unrelated strings D ≈ n+m and
    // the quadratic cost buys nothing over a wholesale replace.
    return replace_middle(t);
  }

  // Myers greedy O(ND). The backtrack only ever consults diagonals
  // |k| <= d of round d, so the trace keeps just that live window per
  // round (d+1 ints, diagonal k at index (k+d)/2) — O(D²) memory instead
  // of snapshotting the whole 2(n+m)+1 V array every round, which made a
  // run near the max_cost boundary cost O((n+m)·D).
  const int max_d = static_cast<int>(n + m);
  const int offset = max_d;
  std::vector<int> v(static_cast<std::size_t>(2 * max_d + 1), 0);
  std::vector<std::vector<int>> trace;
  int found_d = -1;

  for (int d = 0; d <= max_d; ++d) {
    for (int k = -d; k <= d; k += 2) {
      int x;
      if (k == -d ||
          (k != d && v[static_cast<std::size_t>(offset + k - 1)] <
                         v[static_cast<std::size_t>(offset + k + 1)])) {
        x = v[static_cast<std::size_t>(offset + k + 1)];  // down: insert
      } else {
        x = v[static_cast<std::size_t>(offset + k - 1)] + 1;  // right: delete
      }
      int y = x - k;
      while (x < static_cast<int>(n) && y < static_cast<int>(m) &&
             a[static_cast<std::size_t>(x)] == b[static_cast<std::size_t>(y)]) {
        ++x;
        ++y;
      }
      v[static_cast<std::size_t>(offset + k)] = x;
      if (x >= static_cast<int>(n) && y >= static_cast<int>(m)) {
        found_d = d;
        break;
      }
    }
    if (found_d >= 0) break;
    // Round d completed: keep its window for the backtrack. The final
    // (breaking) round is never consulted — backtracking at depth d reads
    // round d-1 — so it needs no snapshot.
    std::vector<int> window(static_cast<std::size_t>(d) + 1);
    for (int k = -d; k <= d; k += 2) {
      window[static_cast<std::size_t>((k + d) / 2)] =
          v[static_cast<std::size_t>(offset + k)];
    }
    trace.push_back(std::move(window));
  }
  if (found_d < 0) {
    throw Error(ErrorCode::kState, "myers_diff: no path found");
  }

  // Backtrack to recover the edit script (in reverse).
  struct Step {
    OpKind kind;
    std::size_t count;  // retain / delete count, or insert length
    std::size_t b_pos;  // start in b, for inserts
  };
  std::vector<Step> steps;
  int x = static_cast<int>(n);
  int y = static_cast<int>(m);
  for (int d = found_d; d > 0; --d) {
    // Round d-1's live window; diagonal k' sits at index (k' + d-1)/2. The
    // |k| == d short-circuits below keep every read inside the window.
    const std::vector<int>& pv = trace[static_cast<std::size_t>(d - 1)];
    const auto at = [&pv, d](int diag) {
      return pv[static_cast<std::size_t>((diag + d - 1) / 2)];
    };
    const int k = x - y;
    int prev_k;
    if (k == -d || (k != d && at(k - 1) < at(k + 1))) {
      prev_k = k + 1;  // came from an insert
    } else {
      prev_k = k - 1;  // came from a delete
    }
    const int prev_x = at(prev_k);
    const int prev_y = prev_x - prev_k;
    // Snake (diagonal run) after the edit.
    const int snake = (prev_k == k + 1) ? (x - prev_x) : (x - prev_x - 1);
    if (snake > 0) {
      steps.push_back({OpKind::kRetain, static_cast<std::size_t>(snake), 0});
    }
    if (prev_k == k + 1) {
      steps.push_back({OpKind::kInsert, 1, static_cast<std::size_t>(prev_y)});
    } else {
      steps.push_back({OpKind::kDelete, 1, 0});
    }
    x = prev_x;
    y = prev_y;
  }
  if (x > 0) {
    steps.push_back({OpKind::kRetain, static_cast<std::size_t>(x), 0});
  }

  Delta d;
  if (t.prefix > 0) d.push(Op::retain(t.prefix));
  for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
    switch (it->kind) {
      case OpKind::kRetain:
        d.push(Op::retain(it->count));
        break;
      case OpKind::kDelete:
        d.push(Op::erase(it->count));
        break;
      case OpKind::kInsert:
        d.push(Op::insert(std::string(b.substr(it->b_pos, it->count))));
        break;
    }
  }
  return d.canonicalized();
}

}  // namespace privedit::delta
