#include "privedit/delta/delta.hpp"
#include "privedit/delta/op_stream.hpp"
#include "privedit/util/error.hpp"

namespace privedit::delta {

using detail::OpStream;

Delta Delta::transform(const Delta& a, const Delta& b, bool a_wins) {
  OpStream sa(a);
  OpStream sb(b);
  Delta out;

  while (true) {
    sa.normalize();
    sb.normalize();
    if (sa.exhausted() && sb.exhausted()) break;

    // Concurrent inserts at the same position: the winner's insert comes
    // first in the merged document; the loser must retain over it.
    if (sa.kind() == OpKind::kInsert && !sa.exhausted() &&
        sb.kind() == OpKind::kInsert && !sb.exhausted()) {
      if (a_wins) {
        const std::size_t n = sa.remaining();
        out.push(Op::insert(std::string(sa.text(n))));
        sa.advance(n);
      } else {
        const std::size_t n = sb.remaining();
        out.push(Op::retain(n));
        sb.advance(n);
      }
      continue;
    }
    if (sa.kind() == OpKind::kInsert && !sa.exhausted()) {
      // a inserts; b did not touch this point — keep the insert.
      const std::size_t n = sa.remaining();
      out.push(Op::insert(std::string(sa.text(n))));
      sa.advance(n);
      continue;
    }
    if (sb.kind() == OpKind::kInsert && !sb.exhausted()) {
      // b inserted text a has never seen — a' must retain over it.
      const std::size_t n = sb.remaining();
      out.push(Op::retain(n));
      sb.advance(n);
      continue;
    }

    // Both sides now consume original-document characters.
    const std::size_t n = std::min(sa.remaining(), sb.remaining());
    if (n == SIZE_MAX) break;  // both at the implicit tail

    if (sa.kind() == OpKind::kRetain && sb.kind() == OpKind::kRetain) {
      out.push(Op::retain(n));
    } else if (sa.kind() == OpKind::kDelete && sb.kind() == OpKind::kRetain) {
      out.push(Op::erase(n));
    } else {
      // b deleted these original characters; whether a retained or deleted
      // them, there is nothing left for a' to act on.
    }
    sa.advance(n);
    sb.advance(n);
  }

  return out.canonicalized();
}

}  // namespace privedit::delta
