#include "privedit/delta/delta.hpp"

#include <charconv>

#include "privedit/util/error.hpp"

namespace privedit::delta {
namespace {

std::string escape_insert(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\t') {
      out += "\\t";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Cap on a single parsed retain/delete count. No real document needs a
/// larger op, and without the cap a hostile count near SIZE_MAX overflows
/// the `cursor + count` bounds checks in apply()/invert() — the sum wraps,
/// the check passes, and substr() silently duplicates document content.
constexpr std::size_t kMaxCount = std::size_t{1} << 32;

std::size_t parse_count(std::string_view digits) {
  if (digits.empty()) {
    throw ParseError("delta: missing count");
  }
  std::size_t value = 0;
  const auto* begin = digits.data();
  const auto* end = digits.data() + digits.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    throw ParseError("delta: invalid count '" + std::string(digits) + "'");
  }
  if (value > kMaxCount) {
    throw ParseError("delta: count " + std::string(digits) +
                     " exceeds the per-op limit");
  }
  return value;
}

}  // namespace

Op Op::insert(std::string s) {
  Op op;
  op.kind = OpKind::kInsert;
  op.count = s.size();
  op.text = std::move(s);
  return op;
}

Delta Delta::parse(std::string_view wire) {
  Delta delta;
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const char tag = wire[pos];
    ++pos;
    if (tag == '=' || tag == '-') {
      std::size_t end = pos;
      while (end < wire.size() && wire[end] != '\t') ++end;
      const std::size_t count = parse_count(wire.substr(pos, end - pos));
      delta.push(tag == '=' ? Op::retain(count) : Op::erase(count));
      pos = end;
    } else if (tag == '+') {
      // Read until an unescaped tab.
      std::string text;
      while (pos < wire.size() && wire[pos] != '\t') {
        if (wire[pos] == '\\') {
          if (pos + 1 >= wire.size()) {
            throw ParseError("delta: dangling escape in insert");
          }
          const char esc = wire[pos + 1];
          if (esc == 't') {
            text.push_back('\t');
          } else if (esc == '\\') {
            text.push_back('\\');
          } else {
            throw ParseError("delta: unknown escape in insert");
          }
          pos += 2;
        } else {
          text.push_back(wire[pos]);
          ++pos;
        }
      }
      delta.push(Op::insert(std::move(text)));
    } else if (tag == '\t') {
      // Empty segment (e.g. trailing tab); tolerate.
      continue;
    } else {
      throw ParseError(std::string("delta: unknown op tag '") + tag + "'");
    }
    // Skip the separator if present.
    if (pos < wire.size()) {
      if (wire[pos] != '\t') {
        throw ParseError("delta: missing tab separator");
      }
      ++pos;
    }
  }
  return delta;
}

std::string Delta::to_wire() const {
  std::string out;
  bool first = true;
  for (const Op& op : ops_) {
    if (!first) out.push_back('\t');
    first = false;
    switch (op.kind) {
      case OpKind::kRetain:
        out.push_back('=');
        out += std::to_string(op.count);
        break;
      case OpKind::kDelete:
        out.push_back('-');
        out += std::to_string(op.count);
        break;
      case OpKind::kInsert:
        out.push_back('+');
        out += escape_insert(op.text);
        break;
    }
  }
  return out;
}

std::string Delta::apply(std::string_view doc) const {
  std::string out;
  out.reserve(doc.size() + 16);
  std::size_t cursor = 0;
  for (const Op& op : ops_) {
    switch (op.kind) {
      case OpKind::kRetain:
        // Overflow-proof form of `cursor + op.count > doc.size()`: the sum
        // wraps for counts near SIZE_MAX and would pass the check.
        if (op.count > doc.size() - cursor) {
          throw Error(ErrorCode::kInvalidArgument,
                      "delta apply: retain past end of document");
        }
        out.append(doc.substr(cursor, op.count));
        cursor += op.count;
        break;
      case OpKind::kInsert:
        out.append(op.text);
        break;
      case OpKind::kDelete:
        if (op.count > doc.size() - cursor) {
          throw Error(ErrorCode::kInvalidArgument,
                      "delta apply: delete past end of document");
        }
        cursor += op.count;
        break;
    }
  }
  out.append(doc.substr(cursor));
  return out;
}

std::size_t Delta::input_span() const {
  std::size_t span = 0;
  for (const Op& op : ops_) {
    if (op.kind != OpKind::kInsert) span += op.count;
  }
  return span;
}

std::int64_t Delta::length_change() const {
  std::int64_t change = 0;
  for (const Op& op : ops_) {
    if (op.kind == OpKind::kInsert) {
      change += static_cast<std::int64_t>(op.count);
    } else if (op.kind == OpKind::kDelete) {
      change -= static_cast<std::int64_t>(op.count);
    }
  }
  return change;
}

Delta Delta::canonicalized() const {
  std::vector<Op> out;
  auto push_merged = [&out](Op op) {
    if (op.count == 0) return;  // drop zero-length ops
    if (!out.empty() && out.back().kind == op.kind) {
      out.back().count += op.count;
      out.back().text += op.text;
      return;
    }
    // Normalise adjacent insert+delete to delete-then-insert so the pair
    // has a single representative order.
    if (!out.empty() && out.back().kind == OpKind::kInsert &&
        op.kind == OpKind::kDelete) {
      Op ins = std::move(out.back());
      out.pop_back();
      // The delete may itself merge with an earlier delete.
      if (!out.empty() && out.back().kind == OpKind::kDelete) {
        out.back().count += op.count;
      } else {
        out.push_back(std::move(op));
      }
      out.push_back(std::move(ins));
      return;
    }
    out.push_back(std::move(op));
  };
  for (const Op& op : ops_) push_merged(op);
  // A trailing pure retain changes nothing; drop it.
  while (!out.empty() && out.back().kind == OpKind::kRetain) out.pop_back();
  return Delta(std::move(out));
}

bool Delta::is_canonical() const {
  return *this == canonicalized();
}

Delta Delta::invert(std::string_view doc) const {
  Delta out;
  std::size_t cursor = 0;
  for (const Op& op : ops_) {
    switch (op.kind) {
      case OpKind::kRetain:
        if (op.count > doc.size() - cursor) {  // overflow-proof bound check
          throw Error(ErrorCode::kInvalidArgument,
                      "delta invert: retain past end of document");
        }
        out.push(Op::retain(op.count));
        cursor += op.count;
        break;
      case OpKind::kInsert:
        out.push(Op::erase(op.count));
        break;
      case OpKind::kDelete:
        if (op.count > doc.size() - cursor) {
          throw Error(ErrorCode::kInvalidArgument,
                      "delta invert: delete past end of document");
        }
        out.push(Op::insert(std::string(doc.substr(cursor, op.count))));
        cursor += op.count;
        break;
    }
  }
  return out.canonicalized();
}

}  // namespace privedit::delta
