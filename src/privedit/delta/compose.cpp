#include "privedit/delta/delta.hpp"
#include "privedit/delta/op_stream.hpp"
#include "privedit/util/error.hpp"

namespace privedit::delta {

using detail::OpStream;

Delta Delta::compose(const Delta& first, const Delta& second) {
  OpStream a(first);
  OpStream b(second);
  Delta out;

  while (true) {
    a.normalize();
    b.normalize();
    if (a.exhausted() && b.exhausted()) break;

    // Inserts in `second` produce output regardless of `first`.
    if (!b.exhausted() && b.kind() == OpKind::kInsert) {
      const std::size_t n = b.remaining();
      out.push(Op::insert(std::string(b.text(n))));
      b.advance(n);
      continue;
    }
    // Deletes in `first` consume original input before `second` sees it.
    if (!a.exhausted() && a.kind() == OpKind::kDelete) {
      const std::size_t n = a.remaining();
      out.push(Op::erase(n));
      a.advance(n);
      continue;
    }

    // Now a is retain/insert (or implicit tail) and b is retain/delete
    // (or implicit tail): match a's output against b's input.
    const std::size_t n = std::min(a.remaining(), b.remaining());
    if (n == SIZE_MAX) break;  // both at the implicit tail

    if (a.kind() == OpKind::kRetain && b.kind() == OpKind::kRetain) {
      out.push(Op::retain(n));
    } else if (a.kind() == OpKind::kRetain && b.kind() == OpKind::kDelete) {
      out.push(Op::erase(n));
    } else if (a.kind() == OpKind::kInsert && b.kind() == OpKind::kRetain) {
      out.push(Op::insert(std::string(a.text(n))));
    } else {
      // a insert + b delete: the inserted text never survives.
    }
    a.advance(n);
    b.advance(n);
  }

  return out.canonicalized();
}

}  // namespace privedit::delta
