#pragma once
// The Google Documents incremental-update ("delta") language (§IV-A).
//
// A delta is a tab-separated sequence of operations applied left-to-right
// with an imaginary cursor starting at position 0:
//   =num   move the cursor forward num characters (retain)
//   +str   insert str at the cursor and advance past it
//   -num   delete num characters at the cursor
// Examples from the paper: "=2\t-5" turns "abcdefg" into "ab";
// "=2\t-3\t+uv\t=2\t+w" turns "abcdefg" into "abuvfgw".
//
// Wire escaping: insert payloads may themselves contain tabs or backslashes;
// we escape '\t' as "\\t" and '\\' as "\\\\" inside +str payloads so the
// tab-separated framing stays unambiguous. (The real protocol relies on
// URL-encoding at the form layer; we additionally keep the delta text
// self-delimiting so it can be logged and diffed safely.)

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace privedit::delta {

enum class OpKind : std::uint8_t { kRetain, kInsert, kDelete };

struct Op {
  OpKind kind;
  std::size_t count = 0;  // retain / delete length; insert: text.size()
  std::string text;       // insert payload only

  static Op retain(std::size_t n) { return Op{OpKind::kRetain, n, {}}; }
  static Op insert(std::string s);
  static Op erase(std::size_t n) { return Op{OpKind::kDelete, n, {}}; }

  bool operator==(const Op& other) const = default;
};

class Delta {
 public:
  Delta() = default;
  explicit Delta(std::vector<Op> ops) : ops_(std::move(ops)) {}

  /// Parses the wire form. Throws ParseError on malformed input.
  static Delta parse(std::string_view wire);

  /// Serialises to the wire form (escaping insert payloads).
  std::string to_wire() const;

  /// Applies to a document. Throws Error(kInvalidArgument) if a retain or
  /// delete runs past the end of the document.
  std::string apply(std::string_view doc) const;

  /// Number of input characters consumed (retains + deletes). The delta is
  /// valid for any document with length >= input_span().
  std::size_t input_span() const;

  /// Length change the delta causes (inserted − deleted), signed.
  std::int64_t length_change() const;

  /// Merges adjacent same-kind ops, drops zero-length ops, and orders each
  /// delete before an immediately adjacent insert at the same position.
  /// This is the local canonical form used as a covert-channel
  /// countermeasure (§VI-B): many op sequences with the same effect map to
  /// one representative.
  Delta canonicalized() const;

  /// Sequential composition: compose(a, b).apply(doc) == b.apply(a.apply(doc))
  /// for every doc both sides are valid for. Used to batch the edits
  /// between two autosaves into one update (§VI-B: "maintaining each group
  /// of delta updates and merging them into a canonical form before
  /// sending"). The result is canonical.
  static Delta compose(const Delta& first, const Delta& second);

  /// Operational transformation for concurrent edits: given two deltas
  /// made against the *same* document version, transform(a, b, true)
  /// returns a' such that applying b then a' reaches the same document as
  /// applying a then transform(b, a, false) — the convergence (TP1)
  /// property. `a_wins` breaks insert ties (same-position inserts): the
  /// winning side's insert lands first. The paper leaves collaborative
  /// editing unresolved (§VII-A, deferring to SPORC); this primitive is
  /// the building block a conflict-free extension would need.
  static Delta transform(const Delta& a, const Delta& b, bool a_wins);

  /// Inverse against the document this delta was made for:
  /// d.invert(doc).apply(d.apply(doc)) == doc. The inverse of an insert is
  /// a delete; the inverse of a delete re-inserts the original characters,
  /// which is why the base document is required. Powers client-side undo.
  Delta invert(std::string_view doc) const;

  /// True if already in canonical form.
  bool is_canonical() const;

  void push(Op op) { ops_.push_back(std::move(op)); }
  const std::vector<Op>& ops() const { return ops_; }
  bool empty() const { return ops_.empty(); }

  bool operator==(const Delta& other) const = default;

 private:
  std::vector<Op> ops_;
};

/// Computes the minimal-ish delta transforming `before` into `after` by
/// trimming the common prefix/suffix and replacing the middle. O(n), not
/// minimal for interleaved edits; used where speed matters.
Delta affix_diff(std::string_view before, std::string_view after);

/// Myers O(ND) character diff producing a minimal delta. Falls back to
/// affix_diff when the inputs are so different that Myers would cost more
/// than max_cost edit steps.
Delta myers_diff(std::string_view before, std::string_view after,
                 std::size_t max_cost = 1u << 20);

}  // namespace privedit::delta
