#include "privedit/cloud/gdocs_server.hpp"

#include <iterator>
#include <sstream>

#include "privedit/crypto/sha256.hpp"
#include "privedit/delta/block_diff.hpp"
#include "privedit/delta/delta.hpp"
#include "privedit/enc/block_wire.hpp"
#include "privedit/enc/container.hpp"
#include "privedit/net/breaker.hpp"
#include "privedit/util/crc32.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/hex.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::cloud {
namespace {

constexpr const char* kDictionaryWords[] = {
    "the",  "quick", "brown",  "fox",   "jumps", "over",  "lazy",  "dog",
    "a",    "an",    "and",    "of",    "to",    "in",    "it",    "is",
    "was",  "for",   "on",     "are",   "as",    "with",  "his",   "they",
    "at",   "be",    "this",   "have",  "from",  "or",    "one",   "had",
    "by",   "word",  "but",    "not",   "what",  "all",   "were",  "we",
    "when", "your",  "can",    "said",  "there", "use",   "each",  "which",
    "she",  "do",    "how",    "their", "if",    "will",  "up",    "other",
    "about", "out",  "many",   "then",  "them",  "these", "so",    "some",
    "her",  "would", "make",   "like",  "him",   "into",  "time",  "has",
    "look", "two",   "more",   "write", "go",    "see",   "number", "no",
    "way",  "could", "people", "my",    "than",  "first", "water", "been",
    "call", "who",   "oil",    "its",   "now",   "find",  "long",  "down",
    "day",  "did",   "get",    "come",  "made",  "may",   "part",  "document",
    "editing", "cloud", "service", "private", "secure", "content"};

// Server-side chain length cap: the base rolls forward past pruned links.
// Clients only need enough tail to link their committed head to the tip.
constexpr std::size_t kAuditChainCap = 512;

bool is_word_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '\'';
}

std::string to_lower(std::string_view word) {
  std::string out;
  out.reserve(word.size());
  for (char c : word) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

}  // namespace

GDocsServer::GDocsServer() {
  for (const char* w : kDictionaryWords) dictionary_.insert(w);
}

std::string GDocsServer::content_hash(const std::string& content) const {
  return hex_encode(crypto::Sha256::hash(as_bytes(content))).substr(0, 16);
}

net::HttpResponse GDocsServer::ack(const Document& doc,
                                   bool include_content) const {
  // The Ack conveys "the current content to the best of the server's
  // knowledge" (§IV-A). The full content rides along only when the client
  // saved against a stale revision and needs to reconcile; the happy path
  // carries just the hash.
  FormData form;
  if (include_content) {
    form.add("contentFromServer", doc.content);
  }
  form.add("contentFromServerHash", content_hash(doc.content));
  form.add("rev", std::to_string(doc.rev));
  if (!doc.audit_chain.empty()) form.add("achain", doc.audit_chain);
  net::HttpResponse resp = net::HttpResponse::make(
      200, form.encode(), "application/x-www-form-urlencoded");
  resp.headers.set("X-Privedit-BDelta", "1");
  return resp;
}

net::HttpResponse GDocsServer::chain_reject(Document& doc) {
  // The save's audit link does not commit the revision this save would
  // produce — another writer advanced the chain (or the client is stale).
  // 412 + areason=chain + the current content, rev and chain: everything
  // the client needs to verify, fast-forward its auditor and re-stage,
  // without an extra round trip.
  ++counters_.chain_rejections;
  net::HttpResponse resp = ack(doc, /*include_content=*/true);
  resp.status = 412;
  resp.reason = "Precondition Failed";
  FormData body = FormData::parse(resp.body);
  body.add("areason", "chain");
  resp.body = body.encode();
  return resp;
}

// Ordering contract: every save path persists the audit sidecar (this
// function) BEFORE the document record. The two puts are individually
// atomic but not jointly, so a crash between them must leave the chain
// *ahead* of the record — DocTable::attach_audit_store trims the orphan
// tip link at restore and the client's journal replay re-lands the save.
// The reverse order would leave an acknowledged-looking revision with no
// chain link, which honest clients cannot distinguish from a fork.
void GDocsServer::store_link(const std::string& doc_id, Document& doc,
                             const enc::AuditLink& link,
                             const FormData& form) {
  enc::AuditChain chain;
  bool have = false;
  if (!doc.audit_chain.empty()) {
    try {
      chain = enc::decode_chain(doc.audit_chain);
      have = true;
    } catch (const Error&) {
      // An unparseable stored chain is dropped and re-rooted below; the
      // clients' committed heads will flag the gap as a fork, which is
      // the correct outcome for history the server lost.
    }
  }
  if (!have) {
    const auto abase = form.get("abase");
    if (!abase) return;  // nothing verifiable to root a chain at
    try {
      chain.base_head = hex_decode(*abase);
    } catch (const Error&) {
      return;
    }
    if (chain.base_head.size() != crypto::Sha256::kDigestSize) return;
    chain.base_rev = link.rev - 1;
    if (const auto abaserev = form.get("abaserev")) {
      try {
        chain.base_rev = std::stoull(*abaserev);
      } catch (...) {
      }
    }
  }
  chain.links.push_back(link);
  while (chain.links.size() > kAuditChainCap) {
    chain.base_rev = chain.links.front().rev;
    chain.base_head = chain.links.front().head;
    chain.links.erase(chain.links.begin());
  }
  doc.audit_chain = enc::encode_chain(chain);
  table_.persist_audit(doc_id, doc);
}

void GDocsServer::adopt_sync_audit(const std::string& doc_id, Document& doc,
                                   const FormData& form) {
  bool dirty = false;
  if (const auto pushed = form.get("achain");
      pushed && *pushed != doc.audit_chain) {
    if (!doc.audit_chain.empty()) {
      // Anti-entropy cross-check: where the replicas' chains overlap in
      // revision, the heads must agree. A divergence means this replica
      // pair served different histories for the same revision — the
      // server-side symptom of equivocation. Counted here; the clients
      // hold the key and classify it authoritatively.
      try {
        const enc::AuditChain ours = enc::decode_chain(doc.audit_chain);
        const enc::AuditChain theirs = enc::decode_chain(*pushed);
        bool diverged = false;
        if (const auto head = theirs.head_at(ours.base_rev)) {
          diverged = *head != ours.base_head;
        }
        for (const enc::AuditLink& link : ours.links) {
          if (diverged) break;
          if (const auto head = theirs.head_at(link.rev)) {
            diverged = *head != link.head;
          }
        }
        if (diverged) ++counters_.equivocations_detected;
      } catch (const Error&) {
      }
    }
    doc.audit_chain = *pushed;
    dirty = true;
  }
  for (const auto& [key, value] : form.fields()) {
    if (key != "w") continue;
    try {
      const enc::AuditWitness w = enc::decode_witness(value);
      std::string& slot = doc.witnesses[w.client];
      if (slot != value) {
        slot = value;
        dirty = true;
      }
    } catch (const Error&) {
    }
  }
  if (dirty) table_.persist_audit(doc_id, doc);
}

void GDocsServer::enable_admission(net::AdmissionConfig config,
                                   std::function<std::uint64_t()> now_us) {
  admission_now_ = now_us ? std::move(now_us)
                          : std::function<std::uint64_t()>(net::now_steady_us);
  admission_ =
      std::make_unique<net::AdmissionController>(config, admission_now_);
}

void GDocsServer::enable_persistence(const std::string& directory) {
  enable_persistence(std::make_unique<FileStore>(directory));
  // Audit sidecar under a subdirectory: invisible to the main store's
  // *.doc walk, so fsck/scrub over the document files is unaffected.
  enable_audit_persistence(std::make_unique<FileStore>(directory + "/.audit"));
}

void GDocsServer::enable_persistence(std::unique_ptr<Store> store) {
  // An unreadable record must not take the provider down, but it must not
  // silently vanish either: quarantine the id (the file stays on disk as
  // repair evidence) and let the replica-repair path heal it via cmd=sync.
  for (const std::string& doc_id : table_.attach_store(std::move(store))) {
    ++counters_.load_quarantined;
    quarantine(doc_id);
  }
}

net::HttpResponse GDocsServer::handle(const net::HttpRequest& request) {
  if (admission_ != nullptr) {
    // Overload check first: a rate-limited client must get its 503 +
    // Retry-After before the server spends any work on the request.
    if (auto refusal = admission_->admit(request, admission_now_())) {
      ++counters_.admission_rejections;
      return *refusal;
    }
  }
  if (scrub_enabled_ && scrub_.interval_requests > 0 &&
      ++requests_since_scrub_ >= scrub_.interval_requests) {
    // Piggybacked background scrubbing: the handler is externally
    // serialised, so stealing a bounded slice of every Nth request is the
    // single-threaded stand-in for a scrubber thread.
    requests_since_scrub_ = 0;
    scrub_step();
  }
  if (request.method != "POST" || request.path() != "/Doc") {
    ++counters_.bad_requests;
    return net::HttpResponse::make(404, "unknown endpoint");
  }
  const auto doc_id = request.query_param("docID");
  if (!doc_id) {
    ++counters_.bad_requests;
    return net::HttpResponse::make(400, "missing docID");
  }
  const FormData form = FormData::parse(request.body);
  const auto cmd = form.get("cmd");

  if (cmd == "create") {
    if (is_quarantined(*doc_id)) {
      ++counters_.quarantine_write_rejections;
      return net::HttpResponse::make(503, "document quarantined");
    }
    ++counters_.creates;
    Document& doc = table_.obtain(*doc_id);
    doc.content.clear();
    doc.rev = 0;
    doc.history.clear();
    // A (re)created document starts a fresh history; the creator may root
    // the audit chain immediately by declaring its genesis head.
    doc.audit_chain.clear();
    doc.witnesses.clear();
    if (const auto abase = form.get("abase")) {
      try {
        enc::AuditChain chain;
        chain.base_head = hex_decode(*abase);
        if (chain.base_head.size() == crypto::Sha256::kDigestSize) {
          doc.audit_chain = enc::encode_chain(chain);
        }
      } catch (const Error&) {
      }
    }
    table_.persist_audit(*doc_id, doc);
    table_.persist(*doc_id, doc);
    FormData reply;
    reply.add("session", std::to_string(doc.next_session++));
    reply.add("rev", "0");
    net::HttpResponse resp = net::HttpResponse::make(
        201, reply.encode(), "application/x-www-form-urlencoded");
    resp.headers.set("X-Privedit-BDelta", "1");
    return resp;
  }

  if (cmd == "sync") {
    if (form.get("digests") == "1") {
      // Rev-anchored digest probe for differential repair: the pusher
      // compares our block digests against the donor copy and sends only
      // the blocks that differ. A quarantined document answers with the
      // flag alone — its digests describe rot, and quarantine may only be
      // lifted by a full validated container anyway.
      ++counters_.sync_probes;
      FormData reply;
      Document* probed = table_.find(*doc_id);
      if (probed == nullptr) {
        reply.add("missing", "1");
      } else if (is_quarantined(*doc_id)) {
        reply.add("quarantined", "1");
      } else {
        const std::size_t bs = delta::repair_block_size(probed->content.size());
        reply.add("rev", std::to_string(probed->rev));
        reply.add("size", std::to_string(probed->content.size()));
        reply.add("crc", std::to_string(crc32(as_bytes(probed->content))));
        reply.add("bs", std::to_string(bs));
        reply.add("digests", enc::block_digests_to_wire(
                                 delta::block_digests(probed->content, bs)));
      }
      net::HttpResponse resp = net::HttpResponse::make(
          200, reply.encode(), "application/x-www-form-urlencoded");
      resp.headers.set("X-Privedit-BDelta", "1");
      return resp;
    }

    if (const auto bwire = form.get("bdelta")) {
      // Differential repair push: only the blocks our copy is missing.
      // Quarantined documents refuse it outright — the only quarantine
      // exit is a full container that passes validation, and a delta
      // against rot would just produce differently-arranged rot.
      if (is_quarantined(*doc_id)) {
        ++counters_.quarantine_write_rejections;
        return net::HttpResponse::make(503, "document quarantined");
      }
      Document* based = table_.find(*doc_id);
      if (based == nullptr) {
        ++counters_.bdelta_mismatches;
        return net::HttpResponse::make(412, "no base for block delta");
      }
      std::string healed;
      try {
        healed = delta::apply_block_delta(enc::block_delta_from_wire(*bwire),
                                          based->content);
      } catch (const ParseError&) {
        ++counters_.bad_requests;
        return net::HttpResponse::make(400, "malformed block delta");
      } catch (const Error&) {
        // Our copy moved (or rotted) since the probe: 412 tells the pusher
        // to fall back to a full-content sync.
        ++counters_.bdelta_mismatches;
        return net::HttpResponse::make(412, "block delta anchor mismatch");
      }
      ++counters_.syncs;
      ++counters_.bdelta_syncs;
      table_.record_history(*based);
      based->content = std::move(healed);
      std::uint64_t rev = based->rev + 1;
      if (const auto rev_field = form.get("rev")) {
        try {
          rev = std::stoull(*rev_field);
        } catch (...) {
        }
      }
      based->rev = rev;
      adopt_sync_audit(*doc_id, *based, form);
      table_.persist(*doc_id, *based);
      return ack(*based, /*include_content=*/false);
    }

    // Anti-entropy push from a ReplicatedChannel repair pass: adopt the
    // full ciphertext + revision wholesale, creating the document if this
    // replica never saw it. Trusting the pushed bytes is fine — the server
    // is untrusted anyway, and integrity is enforced client-side by the
    // crypto (a bogus sync just fails the open validator later).
    const std::string pushed = form.get("content").value_or("");
    if (is_quarantined(*doc_id)) {
      // The one exit from quarantine: a repair push whose payload passes
      // container validation. Anything else keeps the 503 wall up, so a
      // damaged replica cannot "repair" its peers with more damage.
      const bool valid =
          enc::looks_like_container(pushed) &&
          check_record(*doc_id, Store::Record{pushed, 0}, CheckConfig{},
                       nullptr);
      if (!valid) {
        ++counters_.quarantine_write_rejections;
        return net::HttpResponse::make(503, "document quarantined");
      }
      ++counters_.quarantine_repairs;
      unquarantine(*doc_id);
    }
    ++counters_.syncs;
    Document& doc = table_.obtain(*doc_id);
    table_.record_history(doc);
    doc.content = pushed;
    std::uint64_t rev = doc.rev + 1;
    if (const auto rev_field = form.get("rev")) {
      try {
        rev = std::stoull(*rev_field);
      } catch (...) {
      }
    }
    doc.rev = rev;
    adopt_sync_audit(*doc_id, doc, form);
    table_.persist(*doc_id, doc);
    return ack(doc, /*include_content=*/false);
  }

  if (cmd == "delete") {
    // Quota reclaim / migration cleanup. Deleting a quarantined document
    // is allowed — dropping rot is strictly safer than keeping it — and
    // clears the durable quarantine marker along with the record.
    if (!table_.erase(*doc_id)) {
      ++counters_.bad_requests;
      return net::HttpResponse::make(404, "no such document");
    }
    ++counters_.deletes;
    return net::HttpResponse::make(200, "deleted");
  }

  Document* found = table_.find(*doc_id);
  if (found == nullptr) {
    ++counters_.bad_requests;
    return net::HttpResponse::make(404, "no such document");
  }
  Document& doc = *found;

  if (cmd == "witness") {
    // A client publishing its signed chain-head claim. Stored opaquely,
    // keyed by the client id the witness itself names — the MAC binds the
    // id, so a forger can only clobber slots with records peers will
    // reject as MAC-invalid anyway.
    const auto wire = form.get("w");
    if (!wire) {
      ++counters_.bad_requests;
      return net::HttpResponse::make(400, "missing witness");
    }
    try {
      const enc::AuditWitness w = enc::decode_witness(*wire);
      doc.witnesses[w.client] = *wire;
    } catch (const Error&) {
      ++counters_.bad_requests;
      return net::HttpResponse::make(400, "malformed witness");
    }
    ++counters_.witness_stores;
    table_.persist_audit(*doc_id, doc);
    return net::HttpResponse::make(200, "stored");
  }

  if (cmd == "open") {
    ++counters_.opens;
    FormData reply;
    reply.add("content", doc.content);
    reply.add("rev", std::to_string(doc.rev));
    reply.add("session", std::to_string(doc.next_session++));
    if (!doc.audit_chain.empty()) reply.add("achain", doc.audit_chain);
    for (const auto& [client, wire] : doc.witnesses) reply.add("w", wire);
    net::HttpResponse resp = net::HttpResponse::make(
        200, reply.encode(), "application/x-www-form-urlencoded");
    resp.headers.set("X-Privedit-BDelta", "1");
    if (is_quarantined(*doc_id)) {
      // Reads still succeed — client crypto decides whether the bytes are
      // usable — but the damage flag rides along so validators can treat
      // this replica as suspect rather than authoritative.
      resp.headers.set("X-Privedit-Quarantine", "1");
    }
    return resp;
  }

  if (cmd == "spellcheck") {
    ++counters_.spellchecks;
    const std::string text = form.get("text").value_or(doc.content);
    // Tokenise and report unknown words — a feature that fundamentally
    // needs the plaintext (§VII-A lists it among the casualties).
    FormData reply;
    std::string word;
    std::set<std::string> flagged;
    for (std::size_t i = 0; i <= text.size(); ++i) {
      if (i < text.size() && is_word_char(text[i])) {
        word.push_back(text[i]);
      } else if (!word.empty()) {
        const std::string lower = to_lower(word);
        if (dictionary_.find(lower) == dictionary_.end()) {
          flagged.insert(lower);
        }
        word.clear();
      }
    }
    for (const std::string& w : flagged) reply.add("misspelled", w);
    return net::HttpResponse::make(200, reply.encode(),
                                   "application/x-www-form-urlencoded");
  }

  if (cmd == "export") {
    ++counters_.exports;
    net::HttpResponse resp =
        net::HttpResponse::make(200, doc.content, "text/plain");
    if (is_quarantined(*doc_id)) {
      resp.headers.set("X-Privedit-Quarantine", "1");
    }
    return resp;
  }

  if (is_quarantined(*doc_id) &&
      (form.contains("docContents") || form.contains("delta") ||
       form.contains("bdelta"))) {
    // No edits on top of rot: writes wait for the repair path.
    ++counters_.quarantine_write_rejections;
    return net::HttpResponse::make(503, "document quarantined");
  }

  // Audit link riding along with a save. The server cannot verify the MAC
  // (no key) but enforces the structural contract it can see: the link
  // must commit exactly the revision this save will produce.
  std::optional<enc::AuditLink> alink;
  if (const auto alink_wire = form.get("alink")) {
    try {
      alink = enc::decode_link(*alink_wire);
    } catch (const Error&) {
      ++counters_.bad_requests;
      return net::HttpResponse::make(400, "malformed audit link");
    }
  }

  if (const auto bwire = form.get("bdelta")) {
    // Full-state save expressed as a block delta against the server's
    // current container (capability negotiated via X-Privedit-BDelta).
    // Semantically identical to docContents — the decoded target replaces
    // the document wholesale — it just doesn't repeat the bytes the server
    // already holds.
    bool stale = false;
    if (const auto base_rev = form.get("rev")) {
      stale = *base_rev != std::to_string(doc.rev);
    }
    if (alink && alink->rev != doc.rev + 1) return chain_reject(doc);
    std::string next;
    try {
      next = delta::apply_block_delta(enc::block_delta_from_wire(*bwire),
                                      doc.content);
    } catch (const ParseError&) {
      ++counters_.bad_requests;
      return net::HttpResponse::make(400, "malformed block delta");
    } catch (const Error&) {
      // The client's picture of our container is wrong — lost write,
      // concurrent save, or tampering. 412 with the ack fields (current
      // hash + rev) tells it to retry as a plain docContents full save.
      ++counters_.bdelta_mismatches;
      net::HttpResponse resp = ack(doc, /*include_content=*/false);
      resp.status = 412;
      resp.reason = "Precondition Failed";
      return resp;
    }
    ++counters_.bdelta_saves;
    table_.record_history(doc);
    doc.content = std::move(next);
    ++doc.rev;
    // Chain sidecar before document record — see store_link's ordering
    // contract.
    if (alink) store_link(*doc_id, doc, *alink, form);
    table_.persist(*doc_id, doc);
    return ack(doc, stale);
  }

  if (const auto contents = form.get("docContents")) {
    bool stale = false;
    if (const auto base_rev = form.get("rev")) {
      stale = *base_rev != std::to_string(doc.rev);
    }
    if (alink && alink->rev != doc.rev + 1) return chain_reject(doc);
    ++counters_.full_saves;
    table_.record_history(doc);
    doc.content = *contents;
    ++doc.rev;
    // Chain sidecar before document record — see store_link's ordering
    // contract.
    if (alink) store_link(*doc_id, doc, *alink, form);
    table_.persist(*doc_id, doc);
    return ack(doc, stale);
  }

  if (const auto delta_wire = form.get("delta")) {
    // Optimistic concurrency: a stale base revision is applied anyway (the
    // real service merges), but flagged so clients can warn the user.
    bool conflict = false;
    if (const auto base_rev = form.get("rev")) {
      if (*base_rev != std::to_string(doc.rev)) {
        conflict = true;
        ++counters_.conflicts;
      }
    }
    if (conflict && strict_revisions_) {
      // Reject without mutating; the client must rebase and retry.
      net::HttpResponse resp = ack(doc, /*include_content=*/true);
      resp.status = 409;
      resp.reason = "Conflict";
      FormData body = FormData::parse(resp.body);
      body.add("conflict", "1");
      resp.body = body.encode();
      return resp;
    }
    // Concurrency (409) outranks the chain check: a client that must
    // rebase will fast-forward its auditor off the conflict body's achain
    // and restage against the *new* tip in one step.
    if (alink && alink->rev != doc.rev + 1) return chain_reject(doc);
    try {
      const delta::Delta d = delta::Delta::parse(*delta_wire);
      table_.record_history(doc);
      doc.content = d.apply(doc.content);
    } catch (const Error&) {
      ++counters_.bad_requests;
      return net::HttpResponse::make(400, "malformed or inapplicable delta");
    }
    ++doc.rev;
    ++counters_.delta_saves;
    // Chain sidecar before document record — see store_link's ordering
    // contract.
    if (alink) store_link(*doc_id, doc, *alink, form);
    table_.persist(*doc_id, doc);
    net::HttpResponse resp = ack(doc, conflict);
    if (conflict) {
      FormData body = FormData::parse(resp.body);
      body.add("conflict", "1");
      resp.body = body.encode();
    }
    return resp;
  }

  ++counters_.bad_requests;
  return net::HttpResponse::make(400, "unrecognised command");
}

std::optional<std::string> GDocsServer::raw_content(
    const std::string& doc_id) const {
  const Document* doc = table_.find(doc_id);
  if (doc == nullptr) return std::nullopt;
  return doc->content;
}

void GDocsServer::set_raw_content(const std::string& doc_id,
                                  std::string content) {
  Document* doc = table_.find(doc_id);
  if (doc == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "GDocsServer: no such document");
  }
  table_.record_history(*doc);
  doc->content = std::move(content);
  ++doc->rev;
  table_.persist(doc_id, *doc);
}

const std::vector<std::string>& GDocsServer::history(
    const std::string& doc_id) const {
  static const std::vector<std::string> kEmpty;
  const Document* doc = table_.find(doc_id);
  return doc == nullptr ? kEmpty : doc->history;
}

void GDocsServer::scrub_one(const std::string& doc_id, Document& doc) {
  ++scrub_counters_.docs_scrubbed;
  bool dirty = false;

  if (Store* store = table_.store(); store != nullptr) {
    // While the server runs, its memory is authoritative: any divergence
    // on disk is rot (or a lost/rolled-back write) and is repaired by
    // simply re-persisting — the cheapest repair in the whole subsystem,
    // and the reason scrubbing *online* is worth the request-time slice.
    bool repair = false;
    try {
      const auto record = store->get(doc_id);
      if (!record) {
        ++scrub_counters_.store_mismatches;  // lost directory entry
        repair = true;
      } else if (record->content != doc.content || record->rev != doc.rev) {
        ++scrub_counters_.store_mismatches;
        repair = true;
      }
    } catch (const Error&) {
      ++scrub_counters_.unreadable_records;
      repair = true;
    }
    if (repair) {
      dirty = true;
      try {
        store->put(doc_id, Store::Record{doc.content, doc.rev});
        ++scrub_counters_.repaired_from_memory;
      } catch (const StorageError&) {
        // Disk said no (EIO/ENOSPC); the next cycle retries.
      }
    }
  }

  if (scrub_.verify_container && enc::looks_like_container(doc.content)) {
    CheckConfig config;
    config.max_units = scrub_.max_units;
    // Chain evidence rides along: a chain that no longer describes this
    // document is unverifiable history no client will accept — quarantine
    // until replica repair delivers a coherent (content, chain) pair.
    if (!doc.audit_chain.empty()) config.chains[doc_id] = doc.audit_chain;
    if (!check_record(doc_id, Store::Record{doc.content, doc.rev}, config,
                      nullptr)) {
      // The authoritative copy itself is damaged and this server has no
      // better one — stop serving writes and wait for replica repair.
      dirty = true;
      ++scrub_counters_.container_corrupt;
      if (!is_quarantined(doc_id)) {
        ++scrub_counters_.quarantined;
        quarantine(doc_id);
      }
    }
  }

  if (!dirty) ++scrub_counters_.clean;
}

bool GDocsServer::scrub_step() {
  auto& docs = table_.docs();
  if (!scrub_enabled_ || docs.empty()) return false;
  bool wrapped = false;
  const std::size_t budget =
      scrub_.docs_per_cycle == 0 ? 1 : scrub_.docs_per_cycle;
  for (std::size_t i = 0; i < budget; ++i) {
    auto it = scrub_cursor_.empty() ? docs.begin()
                                    : docs.upper_bound(scrub_cursor_);
    if (it == docs.end()) {
      it = docs.begin();
    }
    scrub_one(it->first, it->second);
    scrub_cursor_ = it->first;
    if (std::next(it) == docs.end()) {
      // Completed a full pass; the next step starts a fresh cycle.
      ++scrub_counters_.cycles;
      scrub_cursor_.clear();
      wrapped = true;
      break;
    }
  }
  return wrapped;
}

}  // namespace privedit::cloud
