#pragma once
// Per-tenant accounting and quota enforcement for the sharded front door.
//
// A tenant is whatever the X-Privedit-Client header says it is — the same
// identity admission control meters. The router attributes each document
// to the tenant that created it and charges that tenant for the stored
// bytes; quotas cap document count and total bytes per tenant, with
// 507 Insufficient Storage + Retry-After on refusal (a *different* status
// from the 503 overload family on purpose: overload clears by waiting,
// quota clears by deleting, and clients must be able to tell them apart).
//
// The accounting itself is modelled on a backup provider's account layer:
// a registry of accounts with soft usage tracking, persisted so that a
// provider restart does not forget who owns what. Persistence reuses the
// Store interface — one record per document whose payload is the
// urlencoded pair `tenant=<id>&bytes=<n>`; aggregates are rebuilt from
// the per-document records at load, so the on-disk format has no
// cross-record invariants to corrupt.
//
// Byte-quota semantics (documented contract, tested in shard_test):
//   * create      → doc-count check (an empty doc costs 0 bytes);
//   * full save / sync → projected-size check: rejected if the tenant's
//     usage with THIS doc at its new size would exceed max_bytes;
//   * delta save  → applied first (the router cannot cheaply predict the
//     post-delta size), then trued up; a delta is refused up front only
//     when the tenant is already over its byte quota.
//
// TenantAccounts is thread-safe; router shards call it concurrently.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "privedit/cloud/file_store.hpp"
#include "privedit/net/http.hpp"

namespace privedit::cloud {

/// Tenant id charged when a request carries no X-Privedit-Client header.
inline constexpr const char* kAnonTenant = "anon";

struct TenantQuota {
  std::size_t max_docs = 0;   // 0 = unlimited
  std::size_t max_bytes = 0;  // 0 = unlimited
};

struct TenantUsage {
  std::size_t docs = 0;
  std::size_t bytes = 0;
};

class TenantAccounts {
 public:
  /// Quota applied to tenants without an explicit set_quota entry.
  void set_default_quota(TenantQuota quota);

  void set_quota(const std::string& tenant, TenantQuota quota);
  TenantQuota quota(const std::string& tenant) const;
  TenantUsage usage(const std::string& tenant) const;

  /// Durable accounting: loads existing per-document ownership records
  /// and rebuilds the per-tenant aggregates, then persists every charge
  /// and release. Unreadable records are dropped (the documents they
  /// described keep working — they are just no longer billed).
  void enable_persistence(const std::string& directory);
  void enable_persistence(std::unique_ptr<Store> store);

  /// The tenant charged for a document; nullopt if never charged.
  std::optional<std::string> owner_tenant(const std::string& doc_id) const;

  /// Doc-count admission for a create of `doc_id` by `tenant`. Re-creating
  /// a document the tenant already owns is not a new document. Returns the
  /// 507 refusal, or nullopt to admit.
  std::optional<net::HttpResponse> check_new_doc(const std::string& tenant,
                                                 const std::string& doc_id);

  /// Byte admission for writing `doc_id` at `new_bytes` total size.
  /// Projects the tenant's usage with this document at its new size.
  std::optional<net::HttpResponse> check_projected_bytes(
      const std::string& tenant, const std::string& doc_id,
      std::size_t new_bytes);

  /// True when the tenant's current byte usage already exceeds its quota
  /// (the delta-path up-front refusal).
  bool over_bytes(const std::string& tenant) const;

  /// Records (or updates) the ownership + byte charge for a document.
  /// The owner of an existing document never changes here — the creating
  /// tenant keeps paying for it (collaborators write to the owner's doc).
  void charge(const std::string& tenant, const std::string& doc_id,
              std::size_t bytes);

  /// Drops the charge for a deleted document. No-op if never charged.
  void release(const std::string& doc_id);

  std::size_t account_count() const;

  struct Counters {
    std::size_t doc_rejections = 0;   // 507: doc-count quota
    std::size_t byte_rejections = 0;  // 507: byte quota
    std::size_t charges = 0;
    std::size_t releases = 0;
    std::size_t restore_skipped = 0;  // rotted meta records dropped at boot
  };
  Counters counters() const;

 private:
  struct Charge {
    std::string tenant;
    std::size_t bytes = 0;
  };

  TenantQuota quota_locked(const std::string& tenant) const;
  void persist_charge(const std::string& doc_id, const Charge& charge);

  mutable std::mutex mu_;
  TenantQuota default_quota_;
  std::map<std::string, TenantQuota> quotas_;
  std::map<std::string, TenantUsage> usage_;
  std::map<std::string, Charge> charges_;  // doc id → owner + billed bytes
  std::unique_ptr<Store> store_;
  Counters counters_;
};

/// Builds the 507 quota response: Retry-After (quota pressure rarely clears
/// instantly; a polite client backs off before retrying) + a plain-text
/// reason naming the exhausted dimension.
net::HttpResponse quota_exceeded_response(const std::string& reason);

}  // namespace privedit::cloud
