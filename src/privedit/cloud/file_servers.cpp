#include "privedit/cloud/file_servers.hpp"

#include "privedit/cloud/xml.hpp"
#include "privedit/util/error.hpp"

namespace privedit::cloud {
namespace {

constexpr std::string_view kBespinPrefix = "/file/at/";
constexpr std::string_view kBuzzwordPrefix = "/doc/";

}  // namespace

net::HttpResponse BespinServer::handle(const net::HttpRequest& request) {
  const std::string path = request.path();
  if (path.rfind(kBespinPrefix, 0) != 0 ||
      path.size() == kBespinPrefix.size()) {
    return net::HttpResponse::make(404, "unknown endpoint");
  }
  const std::string file = path.substr(kBespinPrefix.size());

  if (request.method == "PUT") {
    files_[file] = request.body;
    if (store_ != nullptr) {
      try {
        store_->put(file, Store::Record{request.body, 0});
      } catch (const StorageError&) {
        // Bespin acks from memory; the scrub/fsck pass catches the gap.
      }
    }
    return net::HttpResponse::make(200, "");
  }
  if (request.method == "GET") {
    const auto it = files_.find(file);
    if (it == files_.end()) {
      return net::HttpResponse::make(404, "no such file");
    }
    return net::HttpResponse::make(200, it->second);
  }
  if (request.method == "DELETE") {
    files_.erase(file);
    if (store_ != nullptr) store_->remove(file);
    return net::HttpResponse::make(204, "");
  }
  return net::HttpResponse::make(400, "unsupported method");
}

void BespinServer::enable_persistence(const std::string& directory) {
  store_ = std::make_unique<FileStore>(directory);
  std::vector<std::string> corrupt;
  for (auto& [file, record] : store_->load_all(&corrupt)) {
    files_[file] = std::move(record.content);
  }
  load_corrupt_ = corrupt.size();
}

std::optional<std::string> BespinServer::raw_file(
    const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

void BespinServer::set_raw_file(const std::string& path, std::string content) {
  files_[path] = std::move(content);
}

net::HttpResponse BuzzwordServer::handle(const net::HttpRequest& request) {
  const std::string path = request.path();
  if (path.rfind(kBuzzwordPrefix, 0) != 0 ||
      path.size() == kBuzzwordPrefix.size()) {
    return net::HttpResponse::make(404, "unknown endpoint");
  }
  const std::string id = path.substr(kBuzzwordPrefix.size());

  if (request.method == "POST") {
    // The server validates document structure — it must be able to parse
    // the XML even though it should not need the text itself.
    try {
      (void)find_text_runs(request.body);
    } catch (const ParseError&) {
      return net::HttpResponse::make(400, "malformed document XML");
    }
    docs_[id] = request.body;
    return net::HttpResponse::make(200, "", "application/xml");
  }
  if (request.method == "GET") {
    const auto it = docs_.find(id);
    if (it == docs_.end()) {
      return net::HttpResponse::make(404, "no such document");
    }
    return net::HttpResponse::make(200, it->second, "application/xml");
  }
  return net::HttpResponse::make(400, "unsupported method");
}

std::optional<std::string> BuzzwordServer::raw_document(
    const std::string& id) const {
  const auto it = docs_.find(id);
  if (it == docs_.end()) return std::nullopt;
  return it->second;
}

}  // namespace privedit::cloud
