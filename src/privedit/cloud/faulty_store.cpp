#include "privedit/cloud/faulty_store.hpp"

#include <cerrno>

#include "privedit/util/error.hpp"

namespace privedit::cloud {
namespace {

/// Flips one content byte (or the revision when there is none). The XOR
/// mask is never zero, so the record always really changes.
void rot_record(Store::Record& record, std::uint64_t salt) {
  if (record.content.empty()) {
    record.rev ^= 1 + salt % 7;
    return;
  }
  const std::size_t at = salt % record.content.size();
  record.content[at] = static_cast<char>(
      static_cast<unsigned char>(record.content[at]) ^
      (1u << (1 + salt % 7)));
}

}  // namespace

std::string_view store_fault_name(StoreFault fault) {
  switch (fault) {
    case StoreFault::kNone:
      return "none";
    case StoreFault::kBitRot:
      return "bit-rot";
    case StoreFault::kTornWrite:
      return "torn-write";
    case StoreFault::kIoError:
      return "io-error";
    case StoreFault::kEnospc:
      return "enospc";
    case StoreFault::kRollback:
      return "rollback";
    case StoreFault::kLostEntry:
      return "lost-entry";
    case StoreFault::kReadRot:
      return "read-rot";
  }
  return "unknown";
}

FaultyStore::FaultyStore(Store* inner, StoreFaultSpec spec,
                         std::unique_ptr<RandomSource> rng)
    : inner_(inner), spec_(spec), rng_(std::move(rng)) {
  if (inner_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "FaultyStore: null inner store");
  }
  if (rng_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "FaultyStore: null rng");
  }
}

StoreFault FaultyStore::roll_put_fault() {
  if (forced_ != StoreFault::kNone && forced_ != StoreFault::kReadRot) {
    const StoreFault f = forced_;
    forced_ = StoreFault::kNone;
    return f;
  }
  if (rng_->chance(spec_.bit_rot)) return StoreFault::kBitRot;
  if (rng_->chance(spec_.torn_write)) return StoreFault::kTornWrite;
  if (rng_->chance(spec_.io_error)) return StoreFault::kIoError;
  if (rng_->chance(spec_.enospc)) return StoreFault::kEnospc;
  if (rng_->chance(spec_.rollback)) return StoreFault::kRollback;
  if (rng_->chance(spec_.lost_entry)) return StoreFault::kLostEntry;
  return StoreFault::kNone;
}

void FaultyStore::put(const std::string& doc_id, const Record& record) {
  switch (roll_put_fault()) {
    case StoreFault::kIoError:
      ++counters_.io_errors;
      throw StorageError("FaultyStore: injected write fault on " + doc_id,
                         EIO);
    case StoreFault::kEnospc:
      ++counters_.enospcs;
      throw StorageError("FaultyStore: injected disk-full fault on " + doc_id,
                         ENOSPC);
    case StoreFault::kRollback:
      // Acknowledged, never written: whatever record was there before —
      // possibly nothing — is what the next reader sees. The silent twin
      // of the §II rollback adversary, one layer down.
      ++counters_.rollbacks;
      return;
    case StoreFault::kBitRot: {
      ++counters_.bit_rots;
      Record rotted = record;
      rot_record(rotted, rng_->next_u64());
      last_written_ = {doc_id, rotted};
      ++counters_.puts;
      inner_->put(doc_id, rotted);
      return;
    }
    case StoreFault::kTornWrite: {
      ++counters_.torn_writes;
      Record torn = record;
      torn.content.resize(rng_->below(torn.content.size() + 1));
      last_written_ = {doc_id, torn};
      ++counters_.puts;
      inner_->put(doc_id, torn);
      return;
    }
    case StoreFault::kLostEntry:
      ++counters_.lost_entries;
      ++counters_.puts;
      inner_->put(doc_id, record);
      inner_->remove(doc_id);
      return;
    case StoreFault::kNone:
    case StoreFault::kReadRot:
      break;
  }
  last_written_ = {doc_id, record};
  ++counters_.puts;
  inner_->put(doc_id, record);
}

std::optional<FaultyStore::Record> FaultyStore::get(
    const std::string& doc_id) const {
  ++counters_.gets;
  auto record = inner_->get(doc_id);
  bool rot = forced_ == StoreFault::kReadRot;
  if (rot) {
    forced_ = StoreFault::kNone;
  } else {
    rot = rng_->chance(spec_.read_rot);
  }
  if (rot && record) {
    ++counters_.read_rots;
    rot_record(*record, rng_->next_u64());
  }
  return record;
}

std::vector<std::string> FaultyStore::list_doc_ids() const {
  return inner_->list_doc_ids();
}

std::map<std::string, FaultyStore::Record> FaultyStore::load_all(
    std::vector<std::string>* corrupt) const {
  return inner_->load_all(corrupt);
}

void FaultyStore::remove(const std::string& doc_id) { inner_->remove(doc_id); }

void FaultyStore::set_quarantined(const std::string& doc_id, bool on) {
  inner_->set_quarantined(doc_id, on);
}

std::set<std::string> FaultyStore::quarantined() const {
  return inner_->quarantined();
}

void FaultyStore::corrupt_at_rest(const std::string& doc_id,
                                  std::uint64_t salt) {
  std::optional<Record> record;
  try {
    record = inner_->get(doc_id);
  } catch (const Error&) {
    return;  // already unreadable — nothing further to rot
  }
  if (!record) return;
  rot_record(*record, salt);
  inner_->put(doc_id, *record);
}

}  // namespace privedit::cloud
