#pragma once
// Offline store checking — the fsck half of the storage-integrity
// subsystem (the online half is GDocsServer's scrubber; the repair
// orchestration across replicas lives in extension/fsck.hpp, which reuses
// the cmd=sync anti-entropy path).
//
// check_store walks every document of a Store and classifies it:
//
//   clean       — record readable, container framing (and, when a deep
//                 validator is supplied, the full decrypt) passes, and the
//                 journal anchor (when known) matches.
//   repairable  — something is wrong but a healthy replica can heal it
//                 byte-identically through cmd=sync: unreadable record,
//                 corrupt container framing, failed decrypt, or a stored
//                 revision behind / diverged from the last-acknowledged
//                 (rev, checksum) anchor the client's journal holds.
//   quarantine  — assigned by the repair orchestrator when every replica
//                 is bad; the checker itself only ever reports repairable,
//                 since it sees one store at a time.
//
// Modelled on boxbackup's BackupStoreCheck account walk: enumerate every
// on-disk object, verify structure against what the metadata promises,
// and emit typed findings a fix pass can act on.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "privedit/cloud/file_store.hpp"

namespace privedit::cloud {

enum class FindingKind : std::uint8_t {
  kUnreadableRecord,   // get() threw: torn/truncated file or corrupt rev line
  kContainerCorrupt,   // looks like a container but the framing walk fails
  kDecryptFailed,      // container parses but the deep validator rejects it
  kRollback,           // stored rev behind the journal's last-acked anchor
  kFork,               // anchor rev matches but the ciphertext checksum differs
  kMissing,            // expected (anchored or replica-known) doc absent here
  kChainBreak,         // audit chain malformed or inconsistent with the record
};

std::string_view finding_kind_name(FindingKind kind);

enum class Disposition : std::uint8_t { kClean, kRepairable, kQuarantine };

struct Finding {
  std::string doc_id;
  FindingKind kind = FindingKind::kUnreadableRecord;
  Disposition disposition = Disposition::kRepairable;
  std::string detail;
};

/// The client-side evidence fsck verifies stored state against: the
/// journal's last-acknowledged (revision, ciphertext checksum) pair.
struct Anchor {
  std::uint64_t rev = 0;
  std::string checksum;  // store_content_hash16 of the acked ciphertext
};

struct CheckConfig {
  /// Per-document anchors (doc id -> last acked state). Docs without an
  /// anchor get structural checks only. Anchored docs absent from the
  /// store are reported as kMissing.
  std::map<std::string, Anchor> anchors;

  /// Full cryptographic validation of a stored container (e.g. "does it
  /// decrypt under the password"); empty = structural checks only. Kept a
  /// std::function so this layer needs no dependency on the extension's
  /// DocumentSession.
  std::function<bool(const std::string& content)> deep_validate;

  /// Per-document audit chains (doc id -> encoded AuditChain wire), from
  /// the store's `.audit` sidecar or the server's DocTable. The checker
  /// holds no audit key, so it verifies only what structure promises: the
  /// chain decodes, revisions strictly ascend from the base, the tip
  /// speaks for exactly the stored revision, and the tip link's CRC (when
  /// bound — 0 is the journal-replay "unbound" sentinel) matches the
  /// stored container. Any violation is a kChainBreak finding: stored
  /// history a client could never link to, grounds for quarantine when no
  /// replica holds a verifiable copy.
  std::map<std::string, std::string> chains;

  /// Upper bound on container units walked per document (0 = all). The
  /// online scrubber sets this to bound per-request work; fsck leaves it 0.
  std::size_t max_units = 0;
};

struct CheckReport {
  std::vector<Finding> findings;
  std::size_t docs_checked = 0;
  std::size_t clean = 0;
  std::set<std::string> quarantined;  // ids carrying a quarantine marker

  bool store_clean() const { return findings.empty(); }
  std::size_t count(FindingKind kind) const;
  /// Doc ids with at least one finding, deduplicated.
  std::set<std::string> dirty_docs() const;
};

/// The checksum the journal anchors and the GDocs ack hash both use:
/// hex(SHA-256(content)) truncated to 16 chars.
std::string store_content_hash16(std::string_view content);

/// Validates one record's content against `config` (container framing,
/// optional deep validation, optional anchor), appending findings for
/// `doc_id` to `out`. Returns true when the content is clean. Shared by
/// check_store and the online scrubber.
bool check_record(const std::string& doc_id, const Store::Record& record,
                  const CheckConfig& config, std::vector<Finding>* out);

/// Walks every document of `store` (including unreadable ones) plus every
/// anchored id, classifying each. Never throws for content-level problems
/// — they become findings; only store-level I/O failures propagate.
CheckReport check_store(const Store& store, const CheckConfig& config = {});

/// Opens `directory` as a FileStore (sweeping stale temps) and checks it.
/// `swept` (optional) receives the number of orphan *.tmp files discarded.
CheckReport check_directory(const std::string& directory,
                            const CheckConfig& config = {},
                            std::size_t* swept = nullptr);

}  // namespace privedit::cloud
