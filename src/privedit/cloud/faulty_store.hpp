#pragma once
// Fault injection for the storage path — the disk twin of net/fault.hpp.
//
// FaultyStore wraps any Store and makes a configured fraction of
// operations fail the way real disks fail: a stored byte rots silently, a
// write lands short (torn), the kernel reports EIO or ENOSPC, an
// acknowledged write silently never lands (the store rolls back to the
// stale revision), or the directory entry is lost after the write. Faults
// are sampled from a seeded RandomSource, so a failing sequence replays
// bit-for-bit; force_next() pins the next operation's fault for targeted
// tests and the crash-seam matrix.
//
// The mutation happens *above* the inner store's atomicity: a bit-rotted
// or torn put is still written atomically, exactly like firmware that
// acknowledges a write whose bytes were already wrong. Crash seams inside
// FileStore::put therefore compose with these faults — arm a seam, force
// a fault, and the recovered store holds either the old record or the
// faulted attempt, never a third state.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "privedit/cloud/file_store.hpp"
#include "privedit/util/random.hpp"

namespace privedit::cloud {

enum class StoreFault : std::uint8_t {
  kNone = 0,
  kBitRot,     // put: one stored byte flipped silently
  kTornWrite,  // put: only a prefix of the content lands
  kIoError,    // put: fails with StorageError(EIO); nothing written
  kEnospc,     // put: fails with StorageError(ENOSPC); nothing written
  kRollback,   // put: acknowledged but never lands (stale rev survives)
  kLostEntry,  // put: lands, then the directory entry vanishes
  kReadRot,    // get: one returned byte flipped (at-rest bytes intact)
};

/// Human-readable fault name ("bit-rot", "torn-write", ...).
std::string_view store_fault_name(StoreFault fault);

/// Per-operation fault probabilities, each independently sampled; the
/// first that fires wins, in declaration order.
struct StoreFaultSpec {
  double bit_rot = 0.0;
  double torn_write = 0.0;
  double io_error = 0.0;
  double enospc = 0.0;
  double rollback = 0.0;
  double lost_entry = 0.0;
  double read_rot = 0.0;
};

class FaultyStore final : public Store {
 public:
  FaultyStore(Store* inner, StoreFaultSpec spec,
              std::unique_ptr<RandomSource> rng);

  void put(const std::string& doc_id, const Record& record) override;
  std::optional<Record> get(const std::string& doc_id) const override;
  std::vector<std::string> list_doc_ids() const override;
  std::map<std::string, Record> load_all(
      std::vector<std::string>* corrupt = nullptr) const override;
  void remove(const std::string& doc_id) override;
  void set_quarantined(const std::string& doc_id, bool on) override;
  std::set<std::string> quarantined() const override;

  /// Pins the fault for the next put (or get, for kReadRot), overriding
  /// the probabilistic spec once.
  void force_next(StoreFault fault) { forced_ = fault; }

  /// The record the most recent put actually handed to the inner store
  /// (post-mutation) — the "attempted" state crash-matrix tests compare
  /// recovery against. Unset for puts that failed before writing.
  const std::optional<std::pair<std::string, Record>>& last_written() const {
    return last_written_;
  }

  /// Flips one byte of the record already at rest under `doc_id` (content
  /// byte salt % size, or the revision when content is empty) — bit rot
  /// that happens between writes, which no put-time fault can model.
  /// No-op if the document is absent or its record is already unreadable.
  void corrupt_at_rest(const std::string& doc_id, std::uint64_t salt);

  struct Counters {
    std::size_t puts = 0;        // puts forwarded (faulted or not)
    std::size_t gets = 0;
    std::size_t bit_rots = 0;
    std::size_t torn_writes = 0;
    std::size_t io_errors = 0;
    std::size_t enospcs = 0;
    std::size_t rollbacks = 0;
    std::size_t lost_entries = 0;
    std::size_t read_rots = 0;
  };
  const Counters& counters() const { return counters_; }

  Store* inner() const { return inner_; }

 private:
  StoreFault roll_put_fault();

  Store* inner_;
  StoreFaultSpec spec_;
  mutable std::unique_ptr<RandomSource> rng_;
  mutable StoreFault forced_ = StoreFault::kNone;
  std::optional<std::pair<std::string, Record>> last_written_;
  mutable Counters counters_;
};

}  // namespace privedit::cloud
