#include "privedit/cloud/file_store.hpp"

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "privedit/util/error.hpp"
#include "privedit/util/hex.hpp"

namespace privedit::cloud {

namespace fs = std::filesystem;

FileStore::FileStore(std::string directory) : directory_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    throw Error(ErrorCode::kState,
                "FileStore: cannot create directory " + directory_ + ": " +
                    ec.message());
  }
}

std::string FileStore::path_for(const std::string& doc_id) const {
  return directory_ + "/" + hex_encode(as_bytes(doc_id)) + ".doc";
}

void FileStore::put(const std::string& doc_id, const Record& record) {
  const std::string path = path_for(doc_id);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw Error(ErrorCode::kState, "FileStore: cannot write " + tmp);
    }
    out << record.rev << '\n' << record.content;
    out.flush();
    if (!out.good()) {
      throw Error(ErrorCode::kState, "FileStore: short write to " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw Error(ErrorCode::kState,
                "FileStore: rename failed: " + ec.message());
  }
}

std::optional<FileStore::Record> FileStore::get(
    const std::string& doc_id) const {
  const std::string path = path_for(doc_id);
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string raw = buf.str();
  const std::size_t nl = raw.find('\n');
  if (nl == std::string::npos) {
    throw ParseError("FileStore: corrupt document file " + path);
  }
  Record record;
  const auto* b = raw.data();
  auto [p, ec] = std::from_chars(b, b + nl, record.rev);
  if (ec != std::errc() || p != b + nl) {
    throw ParseError("FileStore: corrupt revision in " + path);
  }
  record.content = raw.substr(nl + 1);
  return record;
}

std::map<std::string, FileStore::Record> FileStore::load_all() const {
  std::map<std::string, Record> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < 4 || name.substr(name.size() - 4) != ".doc") continue;
    const std::string doc_id =
        to_string(hex_decode(name.substr(0, name.size() - 4)));
    if (auto record = get(doc_id)) {
      out.emplace(doc_id, std::move(*record));
    }
  }
  if (ec) {
    throw Error(ErrorCode::kState,
                "FileStore: cannot list " + directory_ + ": " + ec.message());
  }
  return out;
}

void FileStore::remove(const std::string& doc_id) {
  std::error_code ec;
  fs::remove(path_for(doc_id), ec);
}

}  // namespace privedit::cloud
