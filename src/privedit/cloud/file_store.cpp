#include "privedit/cloud/file_store.hpp"

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "privedit/util/durable_file.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/hex.hpp"

namespace privedit::cloud {

namespace fs = std::filesystem;

FileStore::FileStore(std::string directory) : directory_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    throw Error(ErrorCode::kState,
                "FileStore: cannot create directory " + directory_ + ": " +
                    ec.message());
  }
  // A crash between temp-write and rename leaves a stale *.tmp behind;
  // it was never acknowledged, so recovery is simply discarding it.
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".tmp") {
      std::error_code ignore;
      fs::remove(entry.path(), ignore);
    }
  }
}

std::string FileStore::path_for(const std::string& doc_id) const {
  return directory_ + "/" + hex_encode(as_bytes(doc_id)) + ".doc";
}

void FileStore::put(const std::string& doc_id, const Record& record) {
  // temp + fsync + rename + dirsync: the rename alone (the previous
  // implementation) is atomic against *readers* but not against power
  // loss — without the fsyncs an acknowledged put can still come back
  // empty or vanish after a provider crash.
  const std::string serialized = std::to_string(record.rev) + '\n' +
                                 record.content;
  durable_replace_file(path_for(doc_id), serialized, "file_store.put");
}

std::optional<FileStore::Record> FileStore::get(
    const std::string& doc_id) const {
  const std::string path = path_for(doc_id);
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string raw = buf.str();
  const std::size_t nl = raw.find('\n');
  if (nl == std::string::npos) {
    throw ParseError("FileStore: corrupt document file " + path);
  }
  Record record;
  const auto* b = raw.data();
  auto [p, ec] = std::from_chars(b, b + nl, record.rev);
  if (ec != std::errc() || p != b + nl) {
    throw ParseError("FileStore: corrupt revision in " + path);
  }
  record.content = raw.substr(nl + 1);
  return record;
}

std::map<std::string, FileStore::Record> FileStore::load_all() const {
  std::map<std::string, Record> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < 4 || name.substr(name.size() - 4) != ".doc") continue;
    const std::string doc_id =
        to_string(hex_decode(name.substr(0, name.size() - 4)));
    if (auto record = get(doc_id)) {
      out.emplace(doc_id, std::move(*record));
    }
  }
  if (ec) {
    throw Error(ErrorCode::kState,
                "FileStore: cannot list " + directory_ + ": " + ec.message());
  }
  return out;
}

void FileStore::remove(const std::string& doc_id) {
  std::error_code ec;
  fs::remove(path_for(doc_id), ec);
}

}  // namespace privedit::cloud
