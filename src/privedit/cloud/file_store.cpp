#include "privedit/cloud/file_store.hpp"

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "privedit/util/durable_file.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/hex.hpp"

namespace privedit::cloud {

namespace fs = std::filesystem;

FileStore::FileStore(std::string directory) : directory_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    throw Error(ErrorCode::kState,
                "FileStore: cannot create directory " + directory_ + ": " +
                    ec.message());
  }
  // A crash between temp-write and rename leaves a stale *.tmp behind;
  // it was never acknowledged, so recovery is simply discarding it.
  tmp_swept_ = sweep_stale_tmp(directory_, "file_store");
}

std::string FileStore::path_for(const std::string& doc_id) const {
  return directory_ + "/" + hex_encode(as_bytes(doc_id)) + ".doc";
}

std::string FileStore::quarantine_path_for(const std::string& doc_id) const {
  return directory_ + "/" + hex_encode(as_bytes(doc_id)) + ".quar";
}

void FileStore::put(const std::string& doc_id, const Record& record) {
  // temp + fsync + rename + dirsync: the rename alone (the previous
  // implementation) is atomic against *readers* but not against power
  // loss — without the fsyncs an acknowledged put can still come back
  // empty or vanish after a provider crash.
  const std::string serialized = std::to_string(record.rev) + '\n' +
                                 record.content;
  durable_replace_file(path_for(doc_id), serialized, "file_store.put");
}

std::optional<FileStore::Record> FileStore::get(
    const std::string& doc_id) const {
  const std::string path = path_for(doc_id);
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string raw = buf.str();
  const std::size_t nl = raw.find('\n');
  if (nl == std::string::npos) {
    throw ParseError("FileStore: corrupt document file " + path);
  }
  Record record;
  const auto* b = raw.data();
  auto [p, ec] = std::from_chars(b, b + nl, record.rev);
  if (ec != std::errc() || p != b + nl) {
    throw ParseError("FileStore: corrupt revision in " + path);
  }
  record.content = raw.substr(nl + 1);
  return record;
}

std::vector<std::string> FileStore::list_doc_ids() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < 4 || name.substr(name.size() - 4) != ".doc") continue;
    try {
      out.push_back(to_string(hex_decode(name.substr(0, name.size() - 4))));
    } catch (const Error&) {
      // A .doc file whose name is not hex was never written by us; it is
      // invisible to get()/put() too, so skip it rather than die listing.
    }
  }
  if (ec) {
    throw Error(ErrorCode::kState,
                "FileStore: cannot list " + directory_ + ": " + ec.message());
  }
  return out;
}

std::map<std::string, FileStore::Record> FileStore::load_all(
    std::vector<std::string>* corrupt) const {
  std::map<std::string, Record> out;
  for (const std::string& doc_id : list_doc_ids()) {
    try {
      if (auto record = get(doc_id)) {
        out.emplace(doc_id, std::move(*record));
      }
    } catch (const ParseError&) {
      // One rotten record must not take the provider down at start; the
      // caller quarantines the id and the fsck/repair path heals it.
      if (corrupt != nullptr) corrupt->push_back(doc_id);
    }
  }
  return out;
}

void FileStore::remove(const std::string& doc_id) {
  std::error_code ec;
  fs::remove(path_for(doc_id), ec);
}

void FileStore::set_quarantined(const std::string& doc_id, bool on) {
  if (on) {
    // The marker only has to survive a polite restart, not power loss —
    // a lost marker re-arises from the next scrub/fsck pass anyway.
    std::ofstream marker(quarantine_path_for(doc_id),
                         std::ios::binary | std::ios::trunc);
    marker << "quarantined\n";
  } else {
    std::error_code ec;
    fs::remove(quarantine_path_for(doc_id), ec);
  }
}

std::set<std::string> FileStore::quarantined() const {
  std::set<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < 5 || name.substr(name.size() - 5) != ".quar") continue;
    try {
      out.insert(to_string(hex_decode(name.substr(0, name.size() - 5))));
    } catch (const Error&) {
    }
  }
  return out;
}

}  // namespace privedit::cloud
