#include "privedit/cloud/tenant.hpp"

#include <stdexcept>
#include <utility>

#include "privedit/util/error.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::cloud {

void TenantAccounts::set_default_quota(TenantQuota quota) {
  std::lock_guard<std::mutex> lock(mu_);
  default_quota_ = quota;
}

void TenantAccounts::set_quota(const std::string& tenant, TenantQuota quota) {
  std::lock_guard<std::mutex> lock(mu_);
  quotas_[tenant] = quota;
}

TenantQuota TenantAccounts::quota_locked(const std::string& tenant) const {
  const auto it = quotas_.find(tenant);
  return it == quotas_.end() ? default_quota_ : it->second;
}

TenantQuota TenantAccounts::quota(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return quota_locked(tenant);
}

TenantUsage TenantAccounts::usage(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = usage_.find(tenant);
  return it == usage_.end() ? TenantUsage{} : it->second;
}

void TenantAccounts::enable_persistence(const std::string& directory) {
  enable_persistence(std::make_unique<FileStore>(directory));
}

void TenantAccounts::enable_persistence(std::unique_ptr<Store> store) {
  std::lock_guard<std::mutex> lock(mu_);
  store_ = std::move(store);
  // Rebuild aggregates from the per-document records. A rotted record —
  // unreadable at the store layer, malformed form encoding, or a bytes
  // field that is not a number — is skipped and counted rather than fatal:
  // a single bad meta record must degrade billing for that document, not
  // take the whole shard down at boot.
  std::vector<std::string> corrupt;
  for (auto& [doc_id, record] : store_->load_all(&corrupt)) {
    try {
      const FormData form = FormData::parse(record.content);
      const auto tenant = form.get("tenant");
      if (!tenant) {
        ++counters_.restore_skipped;
        continue;
      }
      std::size_t bytes = 0;
      if (const auto bytes_field = form.get("bytes")) {
        bytes = static_cast<std::size_t>(std::stoull(*bytes_field));
      }
      charges_[doc_id] = Charge{*tenant, bytes};
      TenantUsage& u = usage_[*tenant];
      ++u.docs;
      u.bytes += bytes;
    } catch (const Error&) {
      ++counters_.restore_skipped;  // percent-decode / form framing rot
    } catch (const std::invalid_argument&) {
      ++counters_.restore_skipped;  // bytes= is not a number
    } catch (const std::out_of_range&) {
      ++counters_.restore_skipped;  // bytes= overflows
    }
  }
  counters_.restore_skipped += corrupt.size();
}

std::optional<std::string> TenantAccounts::owner_tenant(
    const std::string& doc_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = charges_.find(doc_id);
  if (it == charges_.end()) return std::nullopt;
  return it->second.tenant;
}

std::optional<net::HttpResponse> TenantAccounts::check_new_doc(
    const std::string& tenant, const std::string& doc_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const TenantQuota q = quota_locked(tenant);
  if (q.max_docs == 0) return std::nullopt;
  const auto existing = charges_.find(doc_id);
  if (existing != charges_.end() && existing->second.tenant == tenant) {
    // Re-creating a document the tenant already pays for: no new slot.
    return std::nullopt;
  }
  const auto it = usage_.find(tenant);
  const std::size_t docs = it == usage_.end() ? 0 : it->second.docs;
  if (docs + 1 > q.max_docs) {
    ++counters_.doc_rejections;
    return quota_exceeded_response("document quota exceeded");
  }
  return std::nullopt;
}

std::optional<net::HttpResponse> TenantAccounts::check_projected_bytes(
    const std::string& tenant, const std::string& doc_id,
    std::size_t new_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const TenantQuota q = quota_locked(tenant);
  if (q.max_bytes == 0) return std::nullopt;
  const auto it = usage_.find(tenant);
  std::size_t projected = it == usage_.end() ? 0 : it->second.bytes;
  const auto existing = charges_.find(doc_id);
  if (existing != charges_.end() && existing->second.tenant == tenant) {
    projected -= std::min(projected, existing->second.bytes);
  }
  projected += new_bytes;
  if (projected > q.max_bytes) {
    ++counters_.byte_rejections;
    return quota_exceeded_response("byte quota exceeded");
  }
  return std::nullopt;
}

bool TenantAccounts::over_bytes(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const TenantQuota q = quota_locked(tenant);
  if (q.max_bytes == 0) return false;
  const auto it = usage_.find(tenant);
  return it != usage_.end() && it->second.bytes > q.max_bytes;
}

void TenantAccounts::persist_charge(const std::string& doc_id,
                                    const Charge& charge) {
  if (store_ == nullptr) return;
  FormData form;
  form.add("tenant", charge.tenant);
  form.add("bytes", std::to_string(charge.bytes));
  store_->put(doc_id, Store::Record{form.encode(), 0});
}

void TenantAccounts::charge(const std::string& tenant,
                            const std::string& doc_id, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.charges;
  auto it = charges_.find(doc_id);
  if (it != charges_.end()) {
    // The creating tenant keeps paying; only the billed size moves.
    TenantUsage& u = usage_[it->second.tenant];
    u.bytes -= std::min(u.bytes, it->second.bytes);
    u.bytes += bytes;
    it->second.bytes = bytes;
    persist_charge(doc_id, it->second);
    return;
  }
  charges_[doc_id] = Charge{tenant, bytes};
  TenantUsage& u = usage_[tenant];
  ++u.docs;
  u.bytes += bytes;
  persist_charge(doc_id, charges_[doc_id]);
}

void TenantAccounts::release(const std::string& doc_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = charges_.find(doc_id);
  if (it == charges_.end()) return;
  ++counters_.releases;
  TenantUsage& u = usage_[it->second.tenant];
  if (u.docs > 0) --u.docs;
  u.bytes -= std::min(u.bytes, it->second.bytes);
  charges_.erase(it);
  if (store_ != nullptr) store_->remove(doc_id);
}

std::size_t TenantAccounts::account_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return usage_.size();
}

TenantAccounts::Counters TenantAccounts::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

net::HttpResponse quota_exceeded_response(const std::string& reason) {
  net::HttpResponse resp;
  resp.status = 507;
  resp.reason = "Insufficient Storage";
  resp.headers.set("Retry-After", "30");
  resp.headers.set("Content-Type", "text/plain");
  resp.body = reason + "\n";
  return resp;
}

}  // namespace privedit::cloud
