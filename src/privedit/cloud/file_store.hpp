#pragma once
// Durable document storage for the simulated providers.
//
// Cloud providers persist documents across restarts; modelling that makes
// two paper-relevant scenarios testable: (1) the provider restarting does
// not lose ciphertext documents, and (2) an adversary with *filesystem*
// access at the provider (the subpoena case of §II) is just another
// malicious-storage attacker that RPC integrity catches.
//
// Store is the seam the integrity subsystem hangs off: FileStore is the
// real on-disk backend, FaultyStore (faulty_store.hpp) decorates any Store
// with seeded disk faults, and store_check.hpp walks a Store for the
// fsck/scrub passes.
//
// Layout: one file per document under the store directory, named by the
// hex of the document id (ids are arbitrary strings). Each file holds the
// revision on the first line followed by the raw content. Writes go
// through a temp file + rename so a crash never leaves a torn document.
// A "<hex>.quar" sidecar marks a document quarantined by fsck/scrub; the
// marker survives restarts and is cleared by a successful repair.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace privedit::cloud {

/// The provider's document storage: doc id -> (content, revision).
/// Implementations must make put() atomic per document (a reader never
/// observes a half-written record) and raise StorageError on I/O faults.
class Store {
 public:
  struct Record {
    std::string content;
    std::uint64_t rev = 0;

    bool operator==(const Record&) const = default;
  };

  virtual ~Store() = default;

  /// Atomically persists a document. Throws StorageError on I/O failure.
  virtual void put(const std::string& doc_id, const Record& record) = 0;

  /// Loads one document, if present. Throws ParseError on a corrupt file.
  virtual std::optional<Record> get(const std::string& doc_id) const = 0;

  /// Every persisted document id, including ones whose record is corrupt
  /// (get() would throw) — the walk surface for scrub and fsck.
  virtual std::vector<std::string> list_doc_ids() const = 0;

  /// Loads every readable document (used at server start). Ids whose
  /// record is corrupt are skipped and appended to `corrupt` when given
  /// (a nullptr keeps the legacy throw-free skip) — one flipped rev line
  /// must not take the whole provider down.
  virtual std::map<std::string, Record> load_all(
      std::vector<std::string>* corrupt = nullptr) const = 0;

  /// Removes a document (no-op if absent).
  virtual void remove(const std::string& doc_id) = 0;

  /// Marks/unmarks a document as quarantined (durable where the backend
  /// can make it so). Quarantine is store-level metadata, not content:
  /// the record itself stays untouched as repair evidence.
  virtual void set_quarantined(const std::string& doc_id, bool on) = 0;

  /// Ids carrying a quarantine marker.
  virtual std::set<std::string> quarantined() const = 0;
};

class FileStore final : public Store {
 public:
  /// Creates the directory if needed, sweeping stale *.tmp files left by
  /// a crash between temp-write and rename. Throws Error on failure.
  explicit FileStore(std::string directory);

  void put(const std::string& doc_id, const Record& record) override;
  std::optional<Record> get(const std::string& doc_id) const override;
  std::vector<std::string> list_doc_ids() const override;
  std::map<std::string, Record> load_all(
      std::vector<std::string>* corrupt = nullptr) const override;
  void remove(const std::string& doc_id) override;
  void set_quarantined(const std::string& doc_id, bool on) override;
  std::set<std::string> quarantined() const override;

  const std::string& directory() const { return directory_; }

  /// Stale *.tmp files discarded by this instance's opening sweep.
  std::size_t tmp_swept() const { return tmp_swept_; }

  /// The on-disk path of a document's record file (diagnostics, tests).
  std::string path_for(const std::string& doc_id) const;

 private:
  std::string quarantine_path_for(const std::string& doc_id) const;

  std::string directory_;
  std::size_t tmp_swept_ = 0;
};

}  // namespace privedit::cloud
