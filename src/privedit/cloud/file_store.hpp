#pragma once
// Durable document storage for the simulated providers.
//
// Cloud providers persist documents across restarts; modelling that makes
// two paper-relevant scenarios testable: (1) the provider restarting does
// not lose ciphertext documents, and (2) an adversary with *filesystem*
// access at the provider (the subpoena case of §II) is just another
// malicious-storage attacker that RPC integrity catches.
//
// Layout: one file per document under the store directory, named by the
// hex of the document id (ids are arbitrary strings). Each file holds the
// revision on the first line followed by the raw content. Writes go
// through a temp file + rename so a crash never leaves a torn document.

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace privedit::cloud {

class FileStore {
 public:
  /// Creates the directory if needed. Throws Error on failure.
  explicit FileStore(std::string directory);

  struct Record {
    std::string content;
    std::uint64_t rev = 0;
  };

  /// Atomically persists a document.
  void put(const std::string& doc_id, const Record& record);

  /// Loads one document, if present. Throws ParseError on a corrupt file.
  std::optional<Record> get(const std::string& doc_id) const;

  /// Loads every persisted document (used at server start).
  std::map<std::string, Record> load_all() const;

  /// Removes a document's file (no-op if absent).
  void remove(const std::string& doc_id);

  const std::string& directory() const { return directory_; }

 private:
  std::string path_for(const std::string& doc_id) const;

  std::string directory_;
};

}  // namespace privedit::cloud
