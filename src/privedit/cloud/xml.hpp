#pragma once
// Tiny XML utilities for the Buzzword protocol: locate <textRun> elements,
// extract their text, and rewrite their bodies (with entity escaping).
// Deliberately not a general XML parser — exactly the subset Buzzword's
// document format needs, with strict error reporting.

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace privedit::cloud {

/// Escapes &, <, > for element content.
std::string xml_escape(std::string_view text);

/// Unescapes &amp; &lt; &gt; &quot; &apos;. Throws ParseError on unknown
/// or unterminated entities.
std::string xml_unescape(std::string_view text);

struct TextRun {
  std::size_t body_start;  // offset of the body within the document
  std::size_t body_end;    // one past the end of the body
  std::string text;        // unescaped body
};

/// Finds every <textRun ...>body</textRun> element, in document order.
/// Throws ParseError on unterminated elements or nested textRuns.
std::vector<TextRun> find_text_runs(std::string_view xml);

/// Returns the document with every textRun body replaced by
/// transform(old_text), re-escaped.
std::string rewrite_text_runs(
    std::string_view xml,
    const std::function<std::string(const std::string&)>& transform);

/// Concatenation of all textRun texts.
std::string extract_text(std::string_view xml);

}  // namespace privedit::cloud
