#include "privedit/cloud/doc_table.hpp"

#include <utility>

#include "privedit/enc/audit_record.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::cloud {
namespace {

/// Drops chain links that commit revisions beyond `rev`. The save path
/// persists the audit sidecar before the document record (the two puts are
/// not jointly atomic), so a crash between them leaves the chain exactly
/// one link ahead of the record. That orphan link was never acknowledged;
/// keeping it would make the restored server claim history for a revision
/// it cannot serve. Unparseable chains pass through untouched — the
/// clients' committed heads flag those as forks, which is correct for
/// history the server lost. Returns the number of links dropped.
std::size_t trim_chain_to_rev(std::string& wire, std::uint64_t rev) {
  if (wire.empty()) return 0;
  enc::AuditChain chain;
  try {
    chain = enc::decode_chain(wire);
  } catch (const Error&) {
    return 0;
  }
  if (chain.base_rev > rev) {
    const std::size_t dropped = chain.links.size() + 1;
    wire.clear();
    return dropped;
  }
  std::size_t dropped = 0;
  while (!chain.links.empty() && chain.links.back().rev > rev) {
    chain.links.pop_back();
    ++dropped;
  }
  if (dropped > 0) wire = enc::encode_chain(chain);
  return dropped;
}

}  // namespace

std::vector<std::string> DocTable::attach_store(std::unique_ptr<Store> store) {
  store_ = std::move(store);
  std::vector<std::string> corrupt;
  for (auto& [doc_id, record] : store_->load_all(&corrupt)) {
    Document& doc = docs_[doc_id];
    doc.content = std::move(record.content);
    doc.rev = record.rev;
  }
  for (const std::string& doc_id : store_->quarantined()) {
    quarantined_.insert(doc_id);
  }
  return corrupt;
}

void DocTable::attach_audit_store(std::unique_ptr<Store> store) {
  audit_store_ = std::move(store);
  std::vector<std::string> corrupt;
  for (auto& [doc_id, record] : audit_store_->load_all(&corrupt)) {
    const auto it = docs_.find(doc_id);
    if (it == docs_.end()) {
      ++audit_restore_skipped_;  // sidecar outlived its document
      continue;
    }
    try {
      const FormData form = FormData::parse(record.content);
      it->second.audit_chain = form.get("chain").value_or("");
      audit_restore_skipped_ +=
          trim_chain_to_rev(it->second.audit_chain, it->second.rev);
      for (const auto& [key, value] : form.fields()) {
        if (key != "w") continue;
        const std::size_t sep = value.find('=');
        if (sep == std::string::npos) continue;
        it->second.witnesses[value.substr(0, sep)] = value.substr(sep + 1);
      }
    } catch (const Error&) {
      ++audit_restore_skipped_;
    }
  }
  audit_restore_skipped_ += corrupt.size();
}

void DocTable::persist_audit(const std::string& doc_id, const Document& doc) {
  if (audit_store_ == nullptr) return;
  if (doc.audit_chain.empty() && doc.witnesses.empty()) {
    audit_store_->remove(doc_id);
    return;
  }
  FormData form;
  form.add("chain", doc.audit_chain);
  for (const auto& [client, wire] : doc.witnesses) {
    form.add("w", client + "=" + wire);
  }
  audit_store_->put(doc_id, Store::Record{form.encode(), doc.rev});
}

DocTable::Document* DocTable::find(const std::string& doc_id) {
  const auto it = docs_.find(doc_id);
  return it == docs_.end() ? nullptr : &it->second;
}

const DocTable::Document* DocTable::find(const std::string& doc_id) const {
  const auto it = docs_.find(doc_id);
  return it == docs_.end() ? nullptr : &it->second;
}

DocTable::Document& DocTable::obtain(const std::string& doc_id) {
  return docs_[doc_id];
}

bool DocTable::erase(const std::string& doc_id) {
  const bool existed = docs_.erase(doc_id) > 0;
  if (quarantined_.erase(doc_id) > 0 && store_ != nullptr) {
    store_->set_quarantined(doc_id, false);
  }
  if (store_ != nullptr) store_->remove(doc_id);
  if (audit_store_ != nullptr) audit_store_->remove(doc_id);
  return existed;
}

std::vector<std::string> DocTable::ids() const {
  std::vector<std::string> out;
  out.reserve(docs_.size());
  for (const auto& [doc_id, doc] : docs_) out.push_back(doc_id);
  return out;
}

void DocTable::persist(const std::string& doc_id, const Document& doc) {
  if (store_ != nullptr) {
    store_->put(doc_id, Store::Record{doc.content, doc.rev});
  }
}

void DocTable::record_history(Document& doc) {
  doc.history.push_back(doc.content);
  if (history_limit_ > 0 && doc.history.size() > history_limit_) {
    doc.history.erase(doc.history.begin(),
                      doc.history.end() -
                          static_cast<std::ptrdiff_t>(history_limit_));
  }
}

void DocTable::quarantine(const std::string& doc_id) {
  quarantined_.insert(doc_id);
  if (store_ != nullptr) store_->set_quarantined(doc_id, true);
}

void DocTable::unquarantine(const std::string& doc_id) {
  quarantined_.erase(doc_id);
  if (store_ != nullptr) store_->set_quarantined(doc_id, false);
}

}  // namespace privedit::cloud
