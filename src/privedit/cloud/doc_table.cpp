#include "privedit/cloud/doc_table.hpp"

#include <utility>

namespace privedit::cloud {

std::vector<std::string> DocTable::attach_store(std::unique_ptr<Store> store) {
  store_ = std::move(store);
  std::vector<std::string> corrupt;
  for (auto& [doc_id, record] : store_->load_all(&corrupt)) {
    Document& doc = docs_[doc_id];
    doc.content = std::move(record.content);
    doc.rev = record.rev;
  }
  for (const std::string& doc_id : store_->quarantined()) {
    quarantined_.insert(doc_id);
  }
  return corrupt;
}

DocTable::Document* DocTable::find(const std::string& doc_id) {
  const auto it = docs_.find(doc_id);
  return it == docs_.end() ? nullptr : &it->second;
}

const DocTable::Document* DocTable::find(const std::string& doc_id) const {
  const auto it = docs_.find(doc_id);
  return it == docs_.end() ? nullptr : &it->second;
}

DocTable::Document& DocTable::obtain(const std::string& doc_id) {
  return docs_[doc_id];
}

bool DocTable::erase(const std::string& doc_id) {
  const bool existed = docs_.erase(doc_id) > 0;
  if (quarantined_.erase(doc_id) > 0 && store_ != nullptr) {
    store_->set_quarantined(doc_id, false);
  }
  if (store_ != nullptr) store_->remove(doc_id);
  return existed;
}

std::vector<std::string> DocTable::ids() const {
  std::vector<std::string> out;
  out.reserve(docs_.size());
  for (const auto& [doc_id, doc] : docs_) out.push_back(doc_id);
  return out;
}

void DocTable::persist(const std::string& doc_id, const Document& doc) {
  if (store_ != nullptr) {
    store_->put(doc_id, Store::Record{doc.content, doc.rev});
  }
}

void DocTable::record_history(Document& doc) {
  doc.history.push_back(doc.content);
  if (history_limit_ > 0 && doc.history.size() > history_limit_) {
    doc.history.erase(doc.history.begin(),
                      doc.history.end() -
                          static_cast<std::ptrdiff_t>(history_limit_));
  }
}

void DocTable::quarantine(const std::string& doc_id) {
  quarantined_.insert(doc_id);
  if (store_ != nullptr) store_->set_quarantined(doc_id, true);
}

void DocTable::unquarantine(const std::string& doc_id) {
  quarantined_.erase(doc_id);
  if (store_ != nullptr) store_->set_quarantined(doc_id, false);
}

}  // namespace privedit::cloud
