#pragma once
// The two simpler cloud services the paper also wraps (§III):
//
// BespinServer — Mozilla Bespin's open Server API: the client PUTs the whole
// file to /file/at/<path> and GETs it back; no incremental updates.
//
// BuzzwordServer — Adobe Buzzword: the client POSTs the whole document as
// XML; user text lives inside <textRun> elements.

#include <map>
#include <optional>
#include <string>

#include "privedit/net/http.hpp"

namespace privedit::cloud {

class BespinServer {
 public:
  net::HttpResponse handle(const net::HttpRequest& request);

  std::optional<std::string> raw_file(const std::string& path) const;
  void set_raw_file(const std::string& path, std::string content);
  std::size_t file_count() const { return files_.size(); }

 private:
  std::map<std::string, std::string> files_;
};

class BuzzwordServer {
 public:
  net::HttpResponse handle(const net::HttpRequest& request);

  std::optional<std::string> raw_document(const std::string& id) const;

 private:
  std::map<std::string, std::string> docs_;  // id -> XML
};

}  // namespace privedit::cloud
