#pragma once
// The two simpler cloud services the paper also wraps (§III):
//
// BespinServer — Mozilla Bespin's open Server API: the client PUTs the whole
// file to /file/at/<path> and GETs it back; no incremental updates.
//
// BuzzwordServer — Adobe Buzzword: the client POSTs the whole document as
// XML; user text lives inside <textRun> elements.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "privedit/cloud/file_store.hpp"
#include "privedit/net/http.hpp"

namespace privedit::cloud {

class BespinServer {
 public:
  net::HttpResponse handle(const net::HttpRequest& request);

  std::optional<std::string> raw_file(const std::string& path) const;
  void set_raw_file(const std::string& path, std::string content);
  std::size_t file_count() const { return files_.size(); }

  /// Durable storage, same tolerant-load contract as GDocsServer: files
  /// whose record is unreadable are skipped (and counted), not fatal.
  /// Bespin has no revisions, so records are stored at rev 0.
  void enable_persistence(const std::string& directory);

  /// Files skipped at load because their stored record was corrupt.
  std::size_t load_corrupt() const { return load_corrupt_; }

 private:
  std::map<std::string, std::string> files_;
  std::unique_ptr<Store> store_;
  std::size_t load_corrupt_ = 0;
};

class BuzzwordServer {
 public:
  net::HttpResponse handle(const net::HttpRequest& request);

  std::optional<std::string> raw_document(const std::string& id) const;

 private:
  std::map<std::string, std::string> docs_;  // id -> XML
};

}  // namespace privedit::cloud
