#pragma once
// Simulated Google Documents service — the substrate substitution for
// docs.google.com (see DESIGN.md §2).
//
// The protocol mirrors what §IV-A reverse-engineered:
//
//   POST /Doc?docID=<id>     application/x-www-form-urlencoded body
//     cmd=create                           → new document + edit session
//     cmd=open                             → content=…&rev=…&session=…
//     session=…&rev=…&docContents=<full>   → replaces the whole document
//                                            (the first save of a session)
//     session=…&rev=…&delta=<delta wire>   → applies the delta server-side
//     cmd=spellcheck&text=…                → misspelt words (server-side
//                                            feature: needs plaintext!)
//     cmd=export&format=txt                → the stored content verbatim
//     cmd=sync&rev=…&content=…             → replica anti-entropy push:
//                                            adopt content+rev wholesale
//                                            (creates the doc if absent)
//     cmd=sync&digests=1                   → rev-anchored block-digest probe
//                                            (rev/size/crc/bs/digests) for
//                                            differential repair
//     cmd=sync&rev=…&bdelta=<wire>         → repair push carrying only the
//                                            blocks that differ (412 when
//                                            the anchor no longer matches)
//     session=…&rev=…&bdelta=<wire>        → full-state save as a block
//                                            delta against the server's
//                                            current container (412 + ack
//                                            fields → client falls back to
//                                            docContents)
//
// Every protocol response carries X-Privedit-BDelta: 1 — the capability
// header clients check before sending any block-delta form (an older or
// third-party server simply never advertises it).
//     cmd=delete                           → drops the document and its
//                                            stored record (quota reclaim)
//     cmd=witness&w=<witness wire>         → stores a client's signed
//                                            chain-head witness (opaque to
//                                            the server; served on open)
//
// Fork-consistency attributes (DESIGN.md §16): every save may carry
// `alink=<audit link wire>` (+ `abase=<hex head>&abaserev=<rev>` declaring
// the chain base when the server holds no chain yet). The server has no
// audit key, so it stores links opaquely — but it does enforce the one
// structural invariant it can see: the link must commit exactly the
// revision the save produces, else 412 with `areason=chain` plus the
// current chain so the client can verify, fast-forward and re-stage.
// Acks, opens and 409 conflict bodies carry `achain=<chain wire>`; opens
// additionally carry every stored witness as repeated `w=` fields.
// cmd=sync pushes replicate `achain` and `w` alongside content, and the
// receiving replica cross-checks overlapping chain heads first — a
// divergent replica pair is equivocation evidence, counted server-side.
//
// Content-update responses are Acks carrying contentFromServer and
// contentFromServerHash — "the current content to the best of the server's
// knowledge" — plus the new revision. Concurrent editors use the hash to
// detect divergence; the extension blanks these fields, which is exactly
// what breaks simultaneous editing in §VII-A.
//
// The malicious-provider surface (raw_content / set_raw_content / history)
// models an adversary with full control of stored data (§II).
//
// Storage-vs-protocol split: GDocsServer is the protocol layer only; all
// document state (map, durable Store, history, quarantine) lives in a
// DocTable (doc_table.hpp). The shard router migrates documents through
// the same table without going through the HTTP verbs.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <functional>

#include "privedit/cloud/doc_table.hpp"
#include "privedit/cloud/file_store.hpp"
#include "privedit/cloud/store_check.hpp"
#include "privedit/enc/audit_record.hpp"
#include "privedit/net/admission.hpp"
#include "privedit/net/http.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::cloud {

class GDocsServer {
 public:
  GDocsServer();

  /// The net::Handler entry point.
  net::HttpResponse handle(const net::HttpRequest& request);

  // ----- malicious-provider API (tests, attack examples) -----

  /// Stored content of a document (what a subpoena would obtain).
  std::optional<std::string> raw_content(const std::string& doc_id) const;

  /// Direct tampering with stored content.
  void set_raw_content(const std::string& doc_id, std::string content);

  /// Every content version the server ever stored (providers keep history;
  /// the paper cites Google leaking previous versions).
  const std::vector<std::string>& history(const std::string& doc_id) const;

  /// Durable storage: loads any documents already in `directory` and
  /// persists every mutation there (atomic temp+rename writes). A new
  /// server instance on the same directory models a provider restart.
  /// Documents whose stored record is unreadable are quarantined instead
  /// of aborting the load (see quarantine()).
  void enable_persistence(const std::string& directory);

  /// Same, over an arbitrary Store (a FaultyStore in fault tests). Does
  /// NOT attach an audit sidecar — use enable_audit_persistence.
  void enable_persistence(std::unique_ptr<Store> store);

  /// Attaches a sidecar Store for audit chains + witnesses. The directory
  /// overload of enable_persistence does this automatically (under
  /// `<directory>/.audit`); fault tests inject a FaultyStore here.
  void enable_audit_persistence(std::unique_ptr<Store> store) {
    table_.attach_audit_store(std::move(store));
  }

  /// The backing store; nullptr until enable_persistence.
  Store* store() const { return table_.store(); }

  /// The storage layer itself — migration and recovery go through here.
  DocTable& table() { return table_; }
  const DocTable& table() const { return table_; }

  // ----- quarantine (storage integrity) -----
  //
  // A quarantined document is one the integrity subsystem found damaged
  // with no healthy copy in hand: reads are still served (flagged with an
  // X-Privedit-Quarantine: 1 header; client-side crypto rejects garbage,
  // so damaged ciphertext is never mistaken for the document), but
  // ordinary writes get 503 so edits cannot build on rot. The only way
  // out is a cmd=sync push whose content passes container validation —
  // the replica-repair path — which atomically lifts the quarantine.

  void quarantine(const std::string& doc_id) { table_.quarantine(doc_id); }
  void unquarantine(const std::string& doc_id) { table_.unquarantine(doc_id); }
  bool is_quarantined(const std::string& doc_id) const {
    return table_.is_quarantined(doc_id);
  }
  const std::set<std::string>& quarantined() const {
    return table_.quarantined();
  }

  // ----- online scrubber -----

  struct ScrubConfig {
    /// Documents examined per scrub_step() call.
    std::size_t docs_per_cycle = 4;
    /// When non-zero, handle() runs one scrub_step() every N requests —
    /// piggybacked background scrubbing without a thread.
    std::size_t interval_requests = 0;
    /// Also walk the container framing of each document (bounded by
    /// max_units so huge documents don't stall a request).
    bool verify_container = true;
    std::size_t max_units = 64;
  };

  struct ScrubCounters {
    std::size_t cycles = 0;          // complete passes over the corpus
    std::size_t docs_scrubbed = 0;
    std::size_t clean = 0;
    std::size_t unreadable_records = 0;  // store get() threw
    std::size_t store_mismatches = 0;    // disk record != in-memory doc
    std::size_t container_corrupt = 0;   // framing walk failed (in memory)
    std::size_t repaired_from_memory = 0;
    std::size_t quarantined = 0;
  };

  void enable_scrub(ScrubConfig config) {
    scrub_ = config;
    scrub_enabled_ = true;
  }

  /// Examines the next batch of documents: re-reads each from the store
  /// (while the server runs, its memory is authoritative — a divergent or
  /// unreadable disk record is rot, repaired by re-persisting), and
  /// optionally walks the container framing (corrupt memory has no clean
  /// copy anywhere, so it is quarantined). Returns true when this step
  /// completed a full pass over the corpus.
  bool scrub_step();

  const ScrubCounters& scrub_counters() const { return scrub_counters_; }

  /// Caps the per-document version history at `n` entries (0 = unlimited,
  /// the default). Real providers prune history too; the simulation
  /// harness needs the cap so 100k-op runs don't retain every version.
  void set_history_limit(std::size_t n) { table_.set_history_limit(n); }

  /// Optimistic concurrency control: when enabled, a delta save whose base
  /// revision is stale is REJECTED with 409 (carrying the current content
  /// and revision) instead of being merged server-side. This is what an
  /// encrypted deployment needs — the server cannot merge ciphertext
  /// deltas meaningfully — and what the collaborative mediator retries
  /// against.
  void set_strict_revisions(bool on) { strict_revisions_ = on; }
  bool strict_revisions() const { return strict_revisions_; }

  /// Overload protection: per-client token-bucket admission (keyed on the
  /// X-Privedit-Client header). Refused requests get 503 + Retry-After —
  /// explicit backpressure the client's RetryPolicy understands — before
  /// any command dispatch. Circuit-breaker probes bypass the bucket.
  /// `now_us` defaults to the steady clock; pass the SimClock's reading for
  /// deterministic tests.
  void enable_admission(net::AdmissionConfig config,
                        std::function<std::uint64_t()> now_us = {});

  /// The admission controller; nullptr until enable_admission.
  const net::AdmissionController* admission() const { return admission_.get(); }

  std::size_t document_count() const { return table_.size(); }

  struct Counters {
    std::size_t creates = 0;
    std::size_t opens = 0;
    std::size_t full_saves = 0;
    std::size_t delta_saves = 0;
    std::size_t spellchecks = 0;
    std::size_t exports = 0;
    std::size_t conflicts = 0;
    std::size_t bad_requests = 0;
    std::size_t syncs = 0;     // anti-entropy pushes accepted (cmd=sync)
    std::size_t deletes = 0;   // documents dropped via cmd=delete
    std::size_t admission_rejections = 0;  // 503s from the token bucket
    std::size_t load_quarantined = 0;  // unreadable records found at boot
    std::size_t quarantine_write_rejections = 0;  // 503s on damaged docs
    std::size_t quarantine_repairs = 0;  // validated syncs lifting quarantine
    std::size_t bdelta_saves = 0;        // full-state saves sent as block deltas
    std::size_t bdelta_mismatches = 0;   // 412s: block-delta anchor mismatch
    std::size_t sync_probes = 0;         // cmd=sync&digests=1 digest reads
    std::size_t bdelta_syncs = 0;        // repair pushes applied as block deltas
    std::size_t witness_stores = 0;      // cmd=witness records accepted
    std::size_t chain_rejections = 0;    // 412s: audit link rev mismatch
    std::size_t equivocations_detected = 0;  // sync chains with divergent heads
  };
  const Counters& counters() const { return counters_; }

 private:
  using Document = DocTable::Document;

  net::HttpResponse ack(const Document& doc, bool include_content) const;
  std::string content_hash(const std::string& content) const;
  void scrub_one(const std::string& doc_id, Document& doc);
  net::HttpResponse chain_reject(Document& doc);
  void store_link(const std::string& doc_id, Document& doc,
                  const enc::AuditLink& link, const FormData& form);
  void adopt_sync_audit(const std::string& doc_id, Document& doc,
                        const FormData& form);

  DocTable table_;
  std::unique_ptr<net::AdmissionController> admission_;
  std::function<std::uint64_t()> admission_now_;
  bool strict_revisions_ = false;
  std::set<std::string> dictionary_;
  bool scrub_enabled_ = false;
  ScrubConfig scrub_;
  ScrubCounters scrub_counters_;
  std::string scrub_cursor_;  // last doc id examined; empty = start over
  std::size_t requests_since_scrub_ = 0;
  Counters counters_;
};

}  // namespace privedit::cloud
