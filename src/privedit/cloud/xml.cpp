#include "privedit/cloud/xml.hpp"

#include <functional>

#include "privedit/util/error.hpp"

namespace privedit::cloud {
namespace {

constexpr std::string_view kOpenPrefix = "<textRun";
constexpr std::string_view kClose = "</textRun>";

}  // namespace

std::string xml_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string xml_unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out.push_back(text[i]);
      ++i;
      continue;
    }
    const std::size_t semi = text.find(';', i);
    if (semi == std::string_view::npos) {
      throw ParseError("xml: unterminated entity");
    }
    const std::string_view entity = text.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out.push_back('&');
    } else if (entity == "lt") {
      out.push_back('<');
    } else if (entity == "gt") {
      out.push_back('>');
    } else if (entity == "quot") {
      out.push_back('"');
    } else if (entity == "apos") {
      out.push_back('\'');
    } else {
      throw ParseError("xml: unknown entity '&" + std::string(entity) + ";'");
    }
    i = semi + 1;
  }
  return out;
}

std::vector<TextRun> find_text_runs(std::string_view xml) {
  std::vector<TextRun> runs;
  std::size_t pos = 0;
  while (true) {
    const std::size_t open = xml.find(kOpenPrefix, pos);
    if (open == std::string_view::npos) break;
    // The tag name must end here (reject <textRunner>).
    const std::size_t after = open + kOpenPrefix.size();
    if (after >= xml.size()) {
      throw ParseError("xml: unterminated textRun start tag");
    }
    if (xml[after] != '>' && xml[after] != ' ' && xml[after] != '/') {
      pos = after;
      continue;
    }
    const std::size_t tag_end = xml.find('>', open);
    if (tag_end == std::string_view::npos) {
      throw ParseError("xml: unterminated textRun start tag");
    }
    if (xml[tag_end - 1] == '/') {  // self-closing, empty run
      runs.push_back(TextRun{tag_end + 1, tag_end + 1, ""});
      pos = tag_end + 1;
      continue;
    }
    const std::size_t body_start = tag_end + 1;
    const std::size_t close = xml.find(kClose, body_start);
    if (close == std::string_view::npos) {
      throw ParseError("xml: missing </textRun>");
    }
    const std::string_view body = xml.substr(body_start, close - body_start);
    if (body.find(kOpenPrefix) != std::string_view::npos) {
      throw ParseError("xml: nested textRun");
    }
    runs.push_back(TextRun{body_start, close, xml_unescape(body)});
    pos = close + kClose.size();
  }
  return runs;
}

std::string rewrite_text_runs(
    std::string_view xml,
    const std::function<std::string(const std::string&)>& transform) {
  const std::vector<TextRun> runs = find_text_runs(xml);
  std::string out;
  out.reserve(xml.size());
  std::size_t cursor = 0;
  for (const TextRun& run : runs) {
    out += xml.substr(cursor, run.body_start - cursor);
    out += xml_escape(transform(run.text));
    cursor = run.body_end;
  }
  out += xml.substr(cursor);
  return out;
}

std::string extract_text(std::string_view xml) {
  std::string out;
  for (const TextRun& run : find_text_runs(xml)) out += run.text;
  return out;
}

}  // namespace privedit::cloud
