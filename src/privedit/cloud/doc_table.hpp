#pragma once
// DocTable — the storage half of the simulated provider, split out of
// GDocsServer so protocol handling and document storage are separate
// layers (the refactor ROADMAP item 1 needs).
//
// A DocTable owns the in-memory document map, the optional durable Store
// behind it, the per-document version history (with the provider's
// history cap) and the quarantine set. GDocsServer is reduced to protocol
// handling over a DocTable; the shard router reaches the same table for
// migration (export a doc range, drop migrated records) without going
// through the HTTP verbs; fsck/scrub walk the Store as before.
//
// DocTable is NOT internally synchronised — callers serialize access
// (GDocsServer handlers run under serialize_handler or a per-shard lock).

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "privedit/cloud/file_store.hpp"

namespace privedit::cloud {

class DocTable {
 public:
  struct Document {
    std::string content;
    std::uint64_t rev = 0;
    std::vector<std::string> history;
    std::uint64_t next_session = 1;

    // Fork-consistency attributes (enc/audit_record wire forms). The
    // server stores these opaquely — it has no audit key, so it can
    // replay what clients produced but never forge a link or witness.
    std::string audit_chain;                       // "" = no chain yet
    std::map<std::string, std::string> witnesses;  // client id → witness
  };

  /// Caps the per-document version history (0 = unlimited).
  void set_history_limit(std::size_t n) { history_limit_ = n; }
  std::size_t history_limit() const { return history_limit_; }

  /// Attaches a durable Store, loading every readable record and every
  /// quarantine marker. Returns the ids whose stored record was
  /// unreadable — the caller decides what to do (GDocsServer quarantines
  /// them instead of aborting the boot).
  std::vector<std::string> attach_store(std::unique_ptr<Store> store);

  /// The backing store; nullptr until attach_store.
  Store* store() const { return store_.get(); }

  /// Attaches a sidecar store for the audit attributes (chain heads +
  /// witness records), loading them into the matching documents. Call
  /// AFTER attach_store: a sidecar for an unknown document is dropped.
  /// Unreadable sidecars are dropped too (counted in
  /// audit_restore_skipped()) — losing a chain is detectable client-side,
  /// so it must not take the provider down.
  void attach_audit_store(std::unique_ptr<Store> store);

  /// The audit sidecar store; nullptr until attach_audit_store.
  Store* audit_store() const { return audit_store_.get(); }

  /// Persists a document's audit attributes to the sidecar store (no-op
  /// without one). Propagates StorageError from the backend.
  void persist_audit(const std::string& doc_id, const Document& doc);

  /// Unreadable audit sidecars dropped at attach_audit_store time.
  std::size_t audit_restore_skipped() const { return audit_restore_skipped_; }

  Document* find(const std::string& doc_id);
  const Document* find(const std::string& doc_id) const;

  /// The document, created empty if absent.
  Document& obtain(const std::string& doc_id);

  /// Drops the document, its stored record and any quarantine marker.
  /// Returns false if the document did not exist.
  bool erase(const std::string& doc_id);

  std::size_t size() const { return docs_.size(); }
  std::vector<std::string> ids() const;

  /// The underlying ordered map — the scrub cursor walks it in order.
  std::map<std::string, Document>& docs() { return docs_; }
  const std::map<std::string, Document>& docs() const { return docs_; }

  /// Persists one document to the attached store (no-op without one).
  /// Propagates StorageError from the backend.
  void persist(const std::string& doc_id, const Document& doc);

  /// Pushes the current content onto the document's history, pruned to
  /// the history limit.
  void record_history(Document& doc);

  // ----- quarantine (storage integrity) -----

  void quarantine(const std::string& doc_id);
  void unquarantine(const std::string& doc_id);
  bool is_quarantined(const std::string& doc_id) const {
    return quarantined_.contains(doc_id);
  }
  const std::set<std::string>& quarantined() const { return quarantined_; }

 private:
  std::unique_ptr<Store> store_;
  std::unique_ptr<Store> audit_store_;
  std::size_t audit_restore_skipped_ = 0;
  std::map<std::string, Document> docs_;
  std::set<std::string> quarantined_;
  std::size_t history_limit_ = 0;  // 0 = keep everything
};

}  // namespace privedit::cloud
