#include "privedit/cloud/shard_router.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "privedit/crypto/sha256.hpp"
#include "privedit/net/retry.hpp"
#include "privedit/util/bytes.hpp"
#include "privedit/util/crashpoint.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::cloud {
namespace {

std::uint64_t ring_point(const std::string& label) {
  const Bytes digest = crypto::Sha256::hash(as_bytes(label));
  return load_u64be(ByteView(digest.data(), 8));
}

std::vector<std::string> split_ids(const std::string& joined) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= joined.size()) {
    const std::size_t comma = joined.find(',', start);
    const std::size_t end = comma == std::string::npos ? joined.size() : comma;
    if (end > start) out.push_back(joined.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

// ----- HashRing -----

HashRing::HashRing(std::size_t vnodes) : vnodes_(vnodes == 0 ? 1 : vnodes) {}

void HashRing::add(const std::string& shard_id) {
  if (!members_.insert(shard_id).second) return;
  for (std::size_t k = 0; k < vnodes_; ++k) {
    ring_.emplace(ring_point(shard_id + "#" + std::to_string(k)), shard_id);
  }
}

void HashRing::remove(const std::string& shard_id) {
  if (members_.erase(shard_id) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == shard_id ? ring_.erase(it) : std::next(it);
  }
}

bool HashRing::contains(const std::string& shard_id) const {
  return members_.contains(shard_id);
}

const std::string& HashRing::owner(const std::string& key) const {
  if (ring_.empty()) {
    throw Error(ErrorCode::kState, "HashRing: empty ring");
  }
  auto it = ring_.lower_bound(ring_point(key));
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

std::vector<std::string> HashRing::members() const {
  return {members_.begin(), members_.end()};
}

// ----- ShardRouter -----

ShardRouter::ShardRouter(std::vector<std::string> shard_ids,
                         ShardRouterConfig config)
    : config_(std::move(config)), ring_(config_.vnodes) {
  if (!config_.data_dir.empty()) {
    std::filesystem::create_directories(config_.data_dir);
    meta_store_ = std::make_unique<FileStore>(config_.data_dir + "/meta");
    tenants_.enable_persistence(config_.data_dir + "/tenants");
    // A persisted membership record reflects the last committed cutover
    // and overrides whatever the caller passed: after a crash the ring is
    // whatever was durably agreed, not what the restart script believes.
    try {
      if (const auto record = meta_store_->get("members")) {
        membership_generation_ = record->rev;
        shard_ids = split_ids(record->content);
      }
    } catch (const Error&) {
      // Unreadable membership record: fall back to the caller's list.
    }
  }
  if (shard_ids.empty()) {
    throw Error(ErrorCode::kInvalidArgument, "ShardRouter: no shards");
  }
  for (const std::string& id : shard_ids) {
    if (shards_.contains(id)) continue;
    auto shard = std::make_shared<Shard>();
    shard->id = id;
    shard->server = make_server(id);
    ring_.add(id);
    shards_.emplace(id, std::move(shard));
  }
  if (meta_store_ != nullptr) {
    recover();
    if (membership_generation_ == 0) persist_membership();
  }
}

std::string ShardRouter::shard_dir(const std::string& shard_id) const {
  return config_.data_dir + "/shard-" + shard_id;
}

std::unique_ptr<GDocsServer> ShardRouter::make_server(
    const std::string& shard_id) {
  auto server = std::make_unique<GDocsServer>();
  server->set_strict_revisions(config_.strict_revisions);
  if (config_.history_limit > 0) {
    server->set_history_limit(config_.history_limit);
  }
  if (!config_.data_dir.empty()) {
    server->enable_persistence(shard_dir(shard_id));
  }
  if (config_.admission.has_value()) {
    server->enable_admission(*config_.admission, config_.admission_now);
  }
  if (config_.scrub.has_value()) {
    server->enable_scrub(*config_.scrub);
  }
  return server;
}

void ShardRouter::persist_membership() {
  if (meta_store_ == nullptr) return;
  std::string joined;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    for (const std::string& id : ring_.members()) {
      if (!joined.empty()) joined.push_back(',');
      joined += id;
    }
  }
  meta_store_->put("members", Store::Record{joined, ++membership_generation_});
}

void ShardRouter::push_doc(Shard& dst, const std::string& doc_id,
                           const std::string& content, std::uint64_t rev,
                           const std::string& achain,
                           const std::vector<std::string>& witness_wires) {
  FormData form;
  form.add("cmd", "sync");
  form.add("rev", std::to_string(rev));
  form.add("content", content);
  if (!achain.empty()) form.add("achain", achain);
  for (const std::string& wire : witness_wires) form.add("w", wire);
  net::HttpRequest push = net::HttpRequest::post_form(
      "/Doc?docID=" + percent_encode(doc_id), form.encode());
  // Migration pushes are the router's own repair traffic, not client load:
  // mark them like breaker probes so a shard's admission bucket cannot
  // reject its own rebalance.
  push.headers.set(net::kProbeHeader, "1");
  dst.server->handle(push);
}

void ShardRouter::recover() {
  namespace fs = std::filesystem;
  if (config_.data_dir.empty()) return;
  // Pass 1: stray shard directories — a shard that was drained out of the
  // membership (or copied into before a crash aborted its join). Whatever
  // documents they hold are adopted by the ring owner when strictly newer
  // or missing there (writes are blocked during handoff, so revisions
  // cannot diverge — "newer" only happens when the copy step died between
  // persisting destination and cutover in a drain), then dropped.
  for (const auto& entry : fs::directory_iterator(config_.data_dir)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard-", 0) != 0) continue;
    const std::string id = name.substr(6);
    if (shards_.contains(id)) continue;
    FileStore stray(entry.path().string());
    // The stray's audit sidecar, so adoption carries chains along with
    // content (probed first — FileStore creation would plant the dir).
    std::map<std::string, Store::Record> stray_audit;
    {
      std::error_code ec;
      const fs::path audit_dir = entry.path() / ".audit";
      if (fs::is_directory(audit_dir, ec)) {
        FileStore sidecar(audit_dir.string());
        std::vector<std::string> sidecar_corrupt;
        for (auto& [id, rec] : sidecar.load_all(&sidecar_corrupt)) {
          stray_audit.emplace(id, std::move(rec));
        }
      }
    }
    std::vector<std::string> corrupt;
    for (auto& [doc_id, record] : stray.load_all(&corrupt)) {
      Shard& owner = *shards_.at(ring_.owner(doc_id));
      const auto* held = owner.server->table().find(doc_id);
      if (held == nullptr || held->rev < record.rev) {
        std::string achain;
        std::vector<std::string> witness_wires;
        if (const auto audit_it = stray_audit.find(doc_id);
            audit_it != stray_audit.end()) {
          const FormData audit = FormData::parse(audit_it->second.content);
          achain = audit.get("chain").value_or("");
          for (const auto& [key, value] : audit.fields()) {
            // Sidecar witnesses are stored as client=wire; the sync form
            // wants the bare wire (the receiver re-keys by decoding it).
            if (key != "w") continue;
            const auto eq = value.find('=');
            if (eq != std::string::npos) {
              witness_wires.push_back(value.substr(eq + 1));
            }
          }
        }
        push_doc(owner, doc_id, record.content, record.rev, achain,
                 witness_wires);
        ++counters_.strays_adopted;
      }
      // Only drop the stray once the owner verifiably holds the doc at
      // (at least) its revision: a refused push — quarantine wall, store
      // fault — must leave the stray file in place, because it may be
      // the only durable copy. The next recovery retries.
      const auto* landed = owner.server->table().find(doc_id);
      if (landed == nullptr || landed->rev < record.rev) continue;
      stray.set_quarantined(doc_id, false);
      stray.remove(doc_id);
      ++counters_.strays_dropped;
    }
  }
  // Pass 2: duplicates on member shards — a copy left on the old owner by
  // a crash after cutover but before cleanup. The ring owner's copy wins
  // unless the duplicate is strictly newer.
  for (auto& [id, shard] : shards_) {
    for (const std::string& doc_id : shard->server->table().ids()) {
      const std::string& own = ring_.owner(doc_id);
      if (own == id) continue;
      Shard& owner = *shards_.at(own);
      const auto* dup = shard->server->table().find(doc_id);
      const std::uint64_t dup_rev = dup->rev;
      const auto* held = owner.server->table().find(doc_id);
      if (held == nullptr || held->rev < dup_rev) {
        std::vector<std::string> witness_wires;
        for (const auto& [client, wire] : dup->witnesses) {
          witness_wires.push_back(wire);
        }
        push_doc(owner, doc_id, dup->content, dup_rev, dup->audit_chain,
                 witness_wires);
        ++counters_.strays_adopted;
      }
      // Same landed check as pass 1: never erase the duplicate unless
      // the ring owner holds the doc at its revision — a refused push
      // degrades to a duplicate the next recovery reconciles.
      const auto* landed = owner.server->table().find(doc_id);
      if (landed == nullptr || landed->rev < dup_rev) continue;
      shard->server->table().erase(doc_id);
      ++counters_.strays_dropped;
    }
  }
}

net::HttpResponse ShardRouter::handle(const net::HttpRequest& request) {
  if (request.method != "POST" || request.path() != "/Doc") {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.bad_requests;
    return net::HttpResponse::make(404, "unknown endpoint");
  }
  const auto doc_id = request.query_param("docID");
  if (!doc_id) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.bad_requests;
    return net::HttpResponse::make(400, "missing docID");
  }
  const FormData form = FormData::parse(request.body);
  const auto cmd = form.get("cmd");
  const bool is_write = cmd == "create" || cmd == "sync" || cmd == "delete" ||
                        form.contains("docContents") ||
                        form.contains("delta") || form.contains("bdelta");
  const std::string tenant{
      request.headers.get(net::kClientIdHeader).value_or(kAnonTenant)};

  // Tenant quota admission before any shard work. The OWNER tenant is
  // charged (collaborators write to the owner's document), so projected
  // checks bill whoever already pays for the doc, falling back to the
  // requester for documents nobody owns yet.
  std::optional<net::HttpResponse> refusal;
  if (cmd == "create") {
    refusal = tenants_.check_new_doc(tenant, *doc_id);
  } else if (const auto contents = form.get("docContents")) {
    const std::string bill = tenants_.owner_tenant(*doc_id).value_or(tenant);
    refusal = tenants_.check_projected_bytes(bill, *doc_id, contents->size());
  } else if (cmd == "sync") {
    const std::string pushed = form.get("content").value_or("");
    const auto owner = tenants_.owner_tenant(*doc_id);
    if (!owner.has_value()) {
      // sync creates the document when absent (the server adopts the
      // push wholesale), so an unowned target is a new document and must
      // pass the same doc-count admission as cmd=create — otherwise a
      // tenant at max_docs mints unlimited docs through the sync verb.
      refusal = tenants_.check_new_doc(tenant, *doc_id);
    }
    if (!refusal.has_value()) {
      refusal = tenants_.check_projected_bytes(owner.value_or(tenant),
                                               *doc_id, pushed.size());
    }
  } else if (form.contains("delta") || form.contains("bdelta")) {
    // The post-delta size is unknowable without applying the delta (and a
    // block delta patches ciphertext the router cannot decode), so both
    // are admitted optimistically and trued up afterwards; only a tenant
    // already over its byte budget is refused up front.
    const std::string bill = tenants_.owner_tenant(*doc_id).value_or(tenant);
    if (tenants_.over_bytes(bill)) {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.quota_rejections;
      return quota_exceeded_response("byte quota exceeded");
    }
  }
  if (refusal.has_value()) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.quota_rejections;
    return *refusal;
  }

  // Snapshot the owning shard as a shared_ptr: the reference keeps the
  // Shard (and the mutex we are about to take) alive even if a drain
  // erases it from shards_ before this request finishes.
  std::shared_ptr<Shard> shard;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    const std::string& owner_id = ring_.owner(*doc_id);
    // Mid-migration fences: docs in the move plan are between owners,
    // and docs whose ring owner CHANGES with the pending cutover may not
    // even exist yet (a create landing on the old owner would be
    // orphaned — it is in no move plan). Reads keep flowing to the old
    // owner (the ring has not swapped), writes wait it out.
    const bool fenced =
        handoff_.contains(*doc_id) ||
        (next_ring_ != nullptr && next_ring_->owner(*doc_id) != owner_id);
    if (is_write && fenced) {
      {
        std::lock_guard<std::mutex> clock(counters_mu_);
        ++counters_.handoff_rejections;
      }
      return net::overloaded_response(
          config_.handoff_retry_after_s * 1'000'000, "shard handoff");
    }
    shard = shards_.at(owner_id);
  }

  net::HttpResponse resp;
  std::size_t new_bytes = 0;
  bool have_bytes = false;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->down || shard->server == nullptr) {
      std::lock_guard<std::mutex> clock(counters_mu_);
      ++counters_.down_rejections;
      return net::overloaded_response(
          config_.handoff_retry_after_s * 1'000'000, "shard unavailable");
    }
    resp = shard->server->handle(request);
    if (resp.ok() && is_write && cmd != "delete") {
      if (const auto* doc = shard->server->table().find(*doc_id)) {
        new_bytes = doc->content.size();
        have_bytes = true;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.routed;
  }
  // Post-hoc accounting outside the shard lock (TenantAccounts has its
  // own mutex; never hold both).
  if (resp.ok()) {
    if (cmd == "delete") {
      tenants_.release(*doc_id);
    } else if (is_write && have_bytes) {
      const std::string bill = tenants_.owner_tenant(*doc_id).value_or(tenant);
      tenants_.charge(bill, *doc_id, new_bytes);
    }
  }
  return resp;
}

std::vector<std::string> ShardRouter::members() const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return ring_.members();
}

std::size_t ShardRouter::shard_count() const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return shards_.size();
}

std::string ShardRouter::shard_for(const std::string& doc_id) const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return ring_.owner(doc_id);
}

GDocsServer& ShardRouter::shard_server(const std::string& shard_id) {
  std::lock_guard<std::mutex> lock(ring_mu_);
  const auto it = shards_.find(shard_id);
  if (it == shards_.end() || it->second->server == nullptr) {
    throw Error(ErrorCode::kInvalidArgument,
                "ShardRouter: no such shard " + shard_id);
  }
  return *it->second->server;
}

std::vector<std::string> ShardRouter::holders(const std::string& doc_id) const {
  std::vector<std::string> out;
  std::lock_guard<std::mutex> lock(ring_mu_);
  for (const auto& [id, shard] : shards_) {
    std::lock_guard<std::mutex> slock(shard->mu);
    if (shard->server != nullptr &&
        shard->server->table().find(doc_id) != nullptr) {
      out.push_back(id);
    }
  }
  return out;
}

std::optional<std::string> ShardRouter::raw_content(const std::string& doc_id) {
  std::shared_ptr<Shard> shard;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    shard = shards_.at(ring_.owner(doc_id));
  }
  std::lock_guard<std::mutex> lock(shard->mu);
  if (shard->server == nullptr) return std::nullopt;
  return shard->server->raw_content(doc_id);
}

std::size_t ShardRouter::document_count() const {
  std::size_t total = 0;
  std::lock_guard<std::mutex> lock(ring_mu_);
  for (const auto& [id, shard] : shards_) {
    std::lock_guard<std::mutex> slock(shard->mu);
    if (shard->server != nullptr) total += shard->server->document_count();
  }
  return total;
}

void ShardRouter::rebalance_to(const HashRing& next) {
  // Plan: diff current placement against the target ring. Moves capture
  // shard refs under ring_mu_, so the copy/cleanup phases below never
  // touch the shards_ map (migrations are serialised by migrate_mu_,
  // held by our caller, so membership cannot change mid-plan anyway).
  std::vector<Move> moves;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    for (const auto& [id, shard] : shards_) {
      std::lock_guard<std::mutex> slock(shard->mu);
      if (shard->server == nullptr) continue;
      for (const std::string& doc_id : shard->server->table().ids()) {
        const std::string& to = next.owner(doc_id);
        if (to != id) moves.push_back(Move{doc_id, shard, shards_.at(to)});
      }
    }
    for (const Move& m : moves) handoff_.insert(m.doc_id);
    // Also fence docs that are not in the plan but whose ring owner
    // changes with the cutover: a create racing the migration would land
    // on the old owner and be orphaned (no move carries it across).
    next_ring_ = std::make_unique<HashRing>(next);
  }
  CrashPoints::reach("router.migrate.before_copy");

  for (const Move& m : moves) {
    std::string content;
    std::uint64_t rev = 0;
    std::string achain;
    std::vector<std::string> witness_wires;
    bool have = false;
    {
      Shard& src = *m.from;
      std::lock_guard<std::mutex> lock(src.mu);
      if (src.server != nullptr) {
        if (const auto* doc = src.server->table().find(m.doc_id)) {
          content = doc->content;
          rev = doc->rev;
          achain = doc->audit_chain;
          for (const auto& [client, wire] : doc->witnesses) {
            witness_wires.push_back(wire);
          }
          have = true;
        }
      }
    }
    if (have) {
      Shard& dst = *m.to;
      std::lock_guard<std::mutex> lock(dst.mu);
      push_doc(dst, m.doc_id, content, rev, achain, witness_wires);
    }
    CrashPoints::reach("router.migrate.copy");
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.docs_migrated;
    }
  }
  CrashPoints::reach("router.migrate.before_cutover");

  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    ring_ = next;
  }
  persist_membership();
  CrashPoints::reach("router.migrate.after_cutover");

  // Cleanup: drop the source copies — but never before confirming the
  // destination actually holds the doc at the migrated revision, so a
  // failed push (quarantine wall, store error) degrades to a duplicate
  // the next recovery reconciles, not a lost document.
  for (const Move& m : moves) {
    bool landed = false;
    {
      Shard& dst = *m.to;
      std::lock_guard<std::mutex> lock(dst.mu);
      landed = dst.server != nullptr &&
               dst.server->table().find(m.doc_id) != nullptr;
    }
    if (landed) {
      Shard& src = *m.from;
      std::lock_guard<std::mutex> lock(src.mu);
      if (src.server != nullptr) src.server->table().erase(m.doc_id);
    }
    CrashPoints::reach("router.migrate.cleanup");
  }

  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    for (const Move& m : moves) handoff_.erase(m.doc_id);
    next_ring_.reset();
  }
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.migrations;
  }
}

void ShardRouter::add_shard(const std::string& shard_id) {
  std::lock_guard<std::mutex> mig(migrate_mu_);
  HashRing next(config_.vnodes);
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    if (shards_.contains(shard_id)) {
      throw Error(ErrorCode::kInvalidArgument,
                  "ShardRouter: shard already present: " + shard_id);
    }
    next = ring_;
  }
  next.add(shard_id);
  {
    auto shard = std::make_shared<Shard>();
    shard->id = shard_id;
    shard->server = make_server(shard_id);
    std::lock_guard<std::mutex> lock(ring_mu_);
    // Not in ring_ yet: traffic keeps resolving to the old owners until
    // cutover; the new shard only receives migration pushes.
    shards_.emplace(shard_id, std::move(shard));
  }
  rebalance_to(next);
}

void ShardRouter::remove_shard(const std::string& shard_id) {
  std::lock_guard<std::mutex> mig(migrate_mu_);
  HashRing next(config_.vnodes);
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    const auto it = shards_.find(shard_id);
    if (it == shards_.end()) {
      throw Error(ErrorCode::kInvalidArgument,
                  "ShardRouter: no such shard: " + shard_id);
    }
    if (shards_.size() == 1) {
      throw Error(ErrorCode::kState,
                  "ShardRouter: cannot drain the last shard");
    }
    {
      // A crashed shard has nothing in memory to drain from — migrating
      // "its docs" would move nothing, then dropping it from the ring
      // would abandon every document its durable store still holds (and
      // a later restart's stray adoption could resurrect stale copies
      // over re-created docs). Require an explicit restart first.
      std::lock_guard<std::mutex> slock(it->second->mu);
      if (it->second->down || it->second->server == nullptr) {
        throw Error(ErrorCode::kState,
                    "ShardRouter: cannot drain crashed shard " + shard_id +
                        "; restart_shard it first");
      }
    }
    next = ring_;
  }
  next.remove(shard_id);
  rebalance_to(next);
  std::shared_ptr<Shard> removed;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    removed = shards_.at(shard_id);
    shards_.erase(shard_id);
  }
  // In-flight requests that snapshotted this shard before the erase still
  // hold a reference: down it so they answer 503 instead of serving from
  // a server that is no longer part of the service. The drain emptied its
  // table (every doc moved), so nothing durable is dropped here.
  std::lock_guard<std::mutex> lock(removed->mu);
  removed->server.reset();
  removed->down = true;
}

void ShardRouter::crash_shard(const std::string& shard_id) {
  std::shared_ptr<Shard> shard;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    const auto it = shards_.find(shard_id);
    if (it == shards_.end()) {
      throw Error(ErrorCode::kInvalidArgument,
                  "ShardRouter: no such shard: " + shard_id);
    }
    shard = it->second;
  }
  std::lock_guard<std::mutex> lock(shard->mu);
  // Process death: the in-memory table vanishes; only what the shard's
  // FileStore fsync'd survives for restart_shard to reload.
  shard->server.reset();
  shard->down = true;
}

void ShardRouter::restart_shard(const std::string& shard_id) {
  std::shared_ptr<Shard> shard;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    const auto it = shards_.find(shard_id);
    if (it == shards_.end()) {
      throw Error(ErrorCode::kInvalidArgument,
                  "ShardRouter: no such shard: " + shard_id);
    }
    shard = it->second;
  }
  auto server = make_server(shard_id);
  std::lock_guard<std::mutex> lock(shard->mu);
  shard->server = std::move(server);
  shard->down = false;
}

ShardRouter::Counters ShardRouter::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

}  // namespace privedit::cloud
