#include "privedit/cloud/store_check.hpp"

#include <algorithm>

#include "privedit/crypto/sha256.hpp"
#include "privedit/enc/audit_record.hpp"
#include "privedit/enc/container.hpp"
#include "privedit/util/bytes.hpp"
#include "privedit/util/crc32.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/hex.hpp"

namespace privedit::cloud {

std::string_view finding_kind_name(FindingKind kind) {
  switch (kind) {
    case FindingKind::kUnreadableRecord:
      return "unreadable-record";
    case FindingKind::kContainerCorrupt:
      return "container-corrupt";
    case FindingKind::kDecryptFailed:
      return "decrypt-failed";
    case FindingKind::kRollback:
      return "rollback";
    case FindingKind::kFork:
      return "fork";
    case FindingKind::kMissing:
      return "missing";
    case FindingKind::kChainBreak:
      return "chain-break";
  }
  return "unknown";
}

std::size_t CheckReport::count(FindingKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [kind](const Finding& f) { return f.kind == kind; }));
}

std::set<std::string> CheckReport::dirty_docs() const {
  std::set<std::string> out;
  for (const Finding& f : findings) out.insert(f.doc_id);
  return out;
}

std::string store_content_hash16(std::string_view content) {
  return hex_encode(crypto::Sha256::hash(as_bytes(content))).substr(0, 16);
}

namespace {

void add_finding(std::vector<Finding>* out, const std::string& doc_id,
                 FindingKind kind, std::string detail) {
  if (out != nullptr) {
    out->push_back({doc_id, kind, Disposition::kRepairable, std::move(detail)});
  }
}

/// Decodes every unit (or the first `max_units`) so a flipped byte
/// anywhere in the framing — not just the header — is caught.
bool container_walk_ok(const std::string& content, std::size_t max_units,
                       std::string* detail) {
  try {
    enc::ContainerReader reader(content);
    std::size_t units = reader.unit_count();
    if (max_units != 0) units = std::min(units, max_units);
    for (std::size_t u = 0; u < units; ++u) {
      (void)reader.unit(u);
    }
    return true;
  } catch (const Error& e) {
    *detail = e.what();
    return false;
  }
}

/// Keyless structural validation of a stored audit chain against the
/// record it describes (the MAC math needs K_audit; only clients have
/// that — see CheckConfig::chains).
bool chain_structure_ok(const std::string& wire, const Store::Record& record,
                        std::string* detail) {
  enc::AuditChain chain;
  try {
    chain = enc::decode_chain(wire);
  } catch (const Error& e) {
    *detail = std::string("audit chain undecodable: ") + e.what();
    return false;
  }
  std::uint64_t prev = chain.base_rev;
  for (const enc::AuditLink& link : chain.links) {
    if (link.rev <= prev) {
      *detail = "audit chain revisions not ascending at rev " +
                std::to_string(link.rev);
      return false;
    }
    prev = link.rev;
  }
  if (chain.tip_rev() != record.rev) {
    *detail = "audit chain tip rev " + std::to_string(chain.tip_rev()) +
              " != stored rev " + std::to_string(record.rev);
    return false;
  }
  if (!chain.links.empty()) {
    const std::uint32_t tip_crc = chain.links.back().crc;
    // crc 0 is the "unbound" sentinel (a journal-replayed delta link
    // cannot know the resulting container CRC) — nothing to cross-check.
    if (tip_crc != 0 && tip_crc != crc32(as_bytes(record.content))) {
      *detail = "audit chain tip CRC diverges from stored container at rev " +
                std::to_string(record.rev);
      return false;
    }
  }
  return true;
}

}  // namespace

bool check_record(const std::string& doc_id, const Store::Record& record,
                  const CheckConfig& config, std::vector<Finding>* out) {
  bool clean = true;
  if (enc::looks_like_container(record.content)) {
    std::string detail;
    if (!container_walk_ok(record.content, config.max_units, &detail)) {
      add_finding(out, doc_id, FindingKind::kContainerCorrupt, detail);
      clean = false;
    } else if (config.deep_validate && !config.deep_validate(record.content)) {
      add_finding(out, doc_id, FindingKind::kDecryptFailed,
                  "container parses but fails full validation");
      clean = false;
    }
  }
  // Anchor checks are independent of content structure: a rolled-back
  // store can hold a perfectly well-formed *old* container, which only
  // the journal's last-acked (rev, checksum) pair can expose (§II's
  // rollback adversary applied to storage).
  const auto anchor = config.anchors.find(doc_id);
  if (anchor != config.anchors.end()) {
    if (record.rev < anchor->second.rev) {
      add_finding(out, doc_id, FindingKind::kRollback,
                  "stored rev " + std::to_string(record.rev) +
                      " behind acked rev " +
                      std::to_string(anchor->second.rev));
      clean = false;
    } else if (record.rev == anchor->second.rev &&
               !anchor->second.checksum.empty() &&
               store_content_hash16(record.content) !=
                   anchor->second.checksum) {
      add_finding(out, doc_id, FindingKind::kFork,
                  "stored content diverges from acked checksum at rev " +
                      std::to_string(record.rev));
      clean = false;
    }
    // rev > anchor.rev is fine: the provider legitimately moves ahead of
    // the last write *this* client saw acknowledged.
  }
  // A stored chain that cannot describe the stored record means no client
  // will ever link this history — broken independently of the container
  // bytes being well-formed.
  if (const auto chain = config.chains.find(doc_id);
      chain != config.chains.end() && !chain->second.empty()) {
    std::string detail;
    if (!chain_structure_ok(chain->second, record, &detail)) {
      add_finding(out, doc_id, FindingKind::kChainBreak, std::move(detail));
      clean = false;
    }
  }
  return clean;
}

CheckReport check_store(const Store& store, const CheckConfig& config) {
  CheckReport report;
  report.quarantined = store.quarantined();

  std::set<std::string> ids;
  for (std::string& id : store.list_doc_ids()) ids.insert(std::move(id));
  for (const auto& [id, anchor] : config.anchors) {
    if (!ids.contains(id)) {
      report.findings.push_back({id, FindingKind::kMissing,
                                 Disposition::kRepairable,
                                 "anchored at rev " +
                                     std::to_string(anchor.rev) +
                                     " but absent from store"});
    }
  }

  for (const std::string& doc_id : ids) {
    ++report.docs_checked;
    std::optional<Store::Record> record;
    try {
      record = store.get(doc_id);
    } catch (const Error& e) {
      report.findings.push_back({doc_id, FindingKind::kUnreadableRecord,
                                 Disposition::kRepairable, e.what()});
      continue;
    }
    if (!record) {
      // Listed but gone by the time we read it — treat like missing.
      report.findings.push_back({doc_id, FindingKind::kUnreadableRecord,
                                 Disposition::kRepairable,
                                 "listed but unreadable"});
      continue;
    }
    if (check_record(doc_id, *record, config, &report.findings)) {
      ++report.clean;
    }
  }
  return report;
}

CheckReport check_directory(const std::string& directory,
                            const CheckConfig& config, std::size_t* swept) {
  FileStore store(directory);
  if (swept != nullptr) *swept = store.tmp_swept();
  return check_store(store, config);
}

}  // namespace privedit::cloud
