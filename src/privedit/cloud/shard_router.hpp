#pragma once
// ShardRouter — the sharded front door over N GDocsServer shards.
//
// The paper's model (§III) has "the" untrusted server; scaling it to the
// ROADMAP's "heavy traffic from millions of users" means many servers
// behind one routing layer. The router consistent-hashes the docID onto a
// ring of shards, each an independent GDocsServer with its own lock
// domain, admission budget and scrubber cursor — so requests for
// documents on different shards run concurrently, which is where the
// aggregate throughput comes from (a single GDocsServer is externally
// serialised).
//
// The privacy argument is unchanged by sharding: the router sees exactly
// what each shard sees — docIDs, ciphertext containers, tenant labels —
// never plaintext. Routing metadata adds nothing an untrusted provider
// did not already have.
//
// Ring layout: each shard contributes `vnodes` points at
// sha256(shard_id + "#" + k), a key routes to the first point at or after
// sha256(docID) (wrapping). Adding or removing one shard therefore remaps
// only the keys adjacent to its points — ≈ docs/N — and never moves a key
// between two surviving shards (the ring-stability property test).
//
// Multi-tenancy: requests carry X-Privedit-Client; the TenantAccounts
// registry attributes each document to its creating tenant and enforces
// doc-count/byte quotas with 507 + Retry-After (see tenant.hpp).
//
// Shard lifecycle — drain + rebalance:
//   1. plan: diff current ring vs target ring → the set of moving docs;
//   2. handoff: moving docs accept no writes (503 + Retry-After; reads
//      keep hitting the old owner — the ring is not swapped yet). The
//      fence also covers docs that do not exist yet: any write whose
//      owner DIFFERS between the current and target ring is 503'd, so a
//      create racing the migration cannot land on the old owner and be
//      orphaned by cutover (it was in no move plan);
//   3. copy: each moving doc is pushed to its new owner via the PR 2
//      cmd=sync anti-entropy verb (content + revision adopted wholesale);
//   4. cutover: the ring swaps and the new membership is persisted
//      (atomic record write in the meta store);
//   5. cleanup: source copies are deleted; handoff lifts.
// CrashPoints seams (router.migrate.*) bracket every step; a router
// rebuilt on the same data_dir reconciles whatever the crash left —
// stray copies adopted by their ring owner (higher revision wins; writes
// were blocked, so revisions cannot diverge), duplicates dropped —
// restoring exactly-one-owner for every document.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/cloud/tenant.hpp"
#include "privedit/net/admission.hpp"
#include "privedit/net/http.hpp"

namespace privedit::cloud {

/// Consistent-hash ring with virtual nodes. Not thread-safe (the router
/// guards it); value-copyable so migrations can build the target ring
/// beside the live one.
class HashRing {
 public:
  explicit HashRing(std::size_t vnodes = 64);

  void add(const std::string& shard_id);
  void remove(const std::string& shard_id);
  bool contains(const std::string& shard_id) const;

  /// The shard owning `key`. Throws Error(kState) on an empty ring.
  const std::string& owner(const std::string& key) const;

  std::vector<std::string> members() const;
  std::size_t size() const { return members_.size(); }
  std::size_t vnodes() const { return vnodes_; }

 private:
  std::size_t vnodes_;
  std::map<std::uint64_t, std::string> ring_;  // point → shard id
  std::set<std::string> members_;
};

struct ShardRouterConfig {
  std::size_t vnodes = 64;
  /// Root directory for durable state; empty = fully in-memory. Layout:
  /// <data_dir>/shard-<id>/ per-shard FileStore, <data_dir>/meta/ ring
  /// membership, <data_dir>/tenants/ quota accounting.
  std::string data_dir;
  /// Per-shard admission budget (each shard gets its OWN controller —
  /// a tenant hammering one shard cannot starve the others).
  std::optional<net::AdmissionConfig> admission;
  std::function<std::uint64_t()> admission_now;  // clock; {} = steady clock
  std::optional<GDocsServer::ScrubConfig> scrub;  // per-shard scrubber
  bool strict_revisions = false;
  std::size_t history_limit = 0;
  std::uint64_t handoff_retry_after_s = 1;
};

class ShardRouter {
 public:
  ShardRouter(std::vector<std::string> shard_ids, ShardRouterConfig config);

  /// The net::Handler entry point: routes by docID, enforces tenant
  /// quotas, rejects writes to docs mid-handoff, serialises per shard.
  /// Thread-safe.
  net::HttpResponse handle(const net::HttpRequest& request);

  TenantAccounts& tenants() { return tenants_; }

  std::vector<std::string> members() const;
  std::size_t shard_count() const;
  std::string shard_for(const std::string& doc_id) const;

  /// Direct access to one shard's server (tests, sim). The caller must
  /// not race live traffic — hold no expectations of synchronisation.
  GDocsServer& shard_server(const std::string& shard_id);

  /// Every shard currently holding a copy of the document (the sim's
  /// exactly-one-owner check). Down shards report no holdings.
  std::vector<std::string> holders(const std::string& doc_id) const;

  /// Routed convenience read (examples): content of the doc at its owner.
  std::optional<std::string> raw_content(const std::string& doc_id);

  /// Total documents across live shards.
  std::size_t document_count() const;

  // ----- lifecycle -----

  /// Joins a new shard and rebalances: docs whose ring owner becomes the
  /// new shard migrate in (drain protocol above).
  void add_shard(const std::string& shard_id);

  /// Drains a shard — every doc it owns migrates to the surviving ring —
  /// then removes it from the ring and drops its server. Refuses a
  /// crashed shard with Error(kState): its in-memory table is gone, so a
  /// drain would silently abandon every document its durable store still
  /// holds — restart_shard it first, then drain.
  void remove_shard(const std::string& shard_id);

  /// Simulated shard process death: in-memory state is discarded and the
  /// shard answers 503 until restart_shard. Durable state stays on disk.
  void crash_shard(const std::string& shard_id);

  /// Rebuilds the crashed shard from its durable store.
  void restart_shard(const std::string& shard_id);

  struct Counters {
    std::size_t routed = 0;           // requests handed to a shard
    std::size_t bad_requests = 0;     // malformed before routing
    std::size_t quota_rejections = 0;  // 507s (tenant quotas)
    std::size_t handoff_rejections = 0;  // 503s: doc mid-migration
    std::size_t down_rejections = 0;     // 503s: shard crashed
    std::size_t migrations = 0;       // completed add/remove rebalances
    std::size_t docs_migrated = 0;    // docs moved via cmd=sync
    std::size_t strays_adopted = 0;   // recovery: stray copy became owner's
    std::size_t strays_dropped = 0;   // recovery: duplicate copy removed
  };
  Counters counters() const;

 private:
  struct Shard {
    std::string id;
    std::mutex mu;  // the shard's lock domain (guards server + down)
    std::unique_ptr<GDocsServer> server;
    bool down = false;
  };

  // A planned migration step. Holds the shard refs, not just ids: the
  // plan outlives any ring_mu_ critical section, and refs stay valid no
  // matter what the shards_ map does meanwhile.
  struct Move {
    std::string doc_id;
    std::shared_ptr<Shard> from;
    std::shared_ptr<Shard> to;
  };

  std::unique_ptr<GDocsServer> make_server(const std::string& shard_id);
  std::string shard_dir(const std::string& shard_id) const;
  void persist_membership();
  void recover();
  void rebalance_to(const HashRing& next);
  /// Migration/adoption push into `dst` via cmd=sync. `achain` and
  /// `witness_wires` (when present) ride along so the destination's
  /// history stays linkable — moving content without its audit chain
  /// would manufacture a fork on an honest shard.
  void push_doc(Shard& dst, const std::string& doc_id,
                const std::string& content, std::uint64_t rev,
                const std::string& achain = {},
                const std::vector<std::string>& witness_wires = {});

  ShardRouterConfig config_;
  TenantAccounts tenants_;
  std::unique_ptr<Store> meta_store_;
  std::uint64_t membership_generation_ = 0;

  // Guards ring_, the shards_ map, handoff_ and next_ring_. Shards are
  // shared_ptr so a request can snapshot its shard under ring_mu_, drop
  // the lock, and keep the Shard (and its mutex) alive even if
  // remove_shard erases the map entry before the request finishes.
  mutable std::mutex ring_mu_;
  HashRing ring_;
  std::map<std::string, std::shared_ptr<Shard>> shards_;
  std::set<std::string> handoff_;  // doc ids whose writes are 503'd
  // The migration's target ring, set for the whole drain window; writes
  // whose owner differs between ring_ and next_ring_ are 503'd even when
  // the doc id is in no move plan (it may not exist yet).
  std::unique_ptr<HashRing> next_ring_;

  std::mutex migrate_mu_;  // one rebalance at a time

  mutable std::mutex counters_mu_;
  Counters counters_;
};

}  // namespace privedit::cloud
