#pragma once
// Text generation for workloads: plausible English-ish documents built from
// a fixed word list, plus the uniformly random strings the paper's
// micro-benchmark draws (§VII-B). Everything is driven by an injected
// RandomSource so workloads are reproducible.

#include <string>

#include "privedit/util/random.hpp"

namespace privedit::workload {

/// A word from the embedded corpus.
std::string random_word(RandomSource& rng);

/// A sentence of `words` words, capitalised, ending in a period.
std::string random_sentence(RandomSource& rng, std::size_t words);

/// A document of at least `min_chars` characters made of sentences.
std::string random_document(RandomSource& rng, std::size_t min_chars);

/// A uniformly random printable-ASCII string of exactly `len` characters
/// (the micro-benchmark's D and D').
std::string random_string(RandomSource& rng, std::size_t len);

/// The paper's micro-benchmark pair: independent random strings with
/// lengths uniform in [min_len, max_len].
struct RandomPair {
  std::string before;
  std::string after;
};
RandomPair random_pair(RandomSource& rng, std::size_t min_len,
                       std::size_t max_len);

}  // namespace privedit::workload
