#include "privedit/workload/edits.hpp"

#include "privedit/util/error.hpp"
#include "privedit/workload/corpus.hpp"

namespace privedit::workload {

SentenceEditor::SentenceEditor(std::string document, RandomSource* rng)
    : doc_(std::move(document)), rng_(rng) {
  if (rng_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "SentenceEditor: null rng");
  }
  if (doc_.empty()) {
    doc_ = random_sentence(*rng_, 6);
  }
}

SentenceEditor::Span SentenceEditor::pick_sentence() const {
  // Choose a random position, then extend to sentence boundaries (periods).
  const std::size_t anchor = rng_->below(doc_.size());
  std::size_t start = anchor;
  while (start > 0 && doc_[start - 1] != '.') --start;
  std::size_t end = anchor;
  while (end < doc_.size() && doc_[end] != '.') ++end;
  if (end < doc_.size()) ++end;  // include the period
  return Span{start, end - start};
}

delta::Delta SentenceEditor::step(MacroOp op) {
  delta::Delta d;
  switch (op) {
    case MacroOp::kReplaceSentence: {
      const Span span = pick_sentence();
      const std::string replacement =
          random_sentence(*rng_, 4 + rng_->below(9));
      if (span.start > 0) d.push(delta::Op::retain(span.start));
      if (span.length > 0) d.push(delta::Op::erase(span.length));
      d.push(delta::Op::insert(replacement));
      break;
    }
    case MacroOp::kInsertSentence: {
      // Insert at a sentence boundary.
      const Span span = pick_sentence();
      const std::size_t pos = span.start;
      std::string text = random_sentence(*rng_, 4 + rng_->below(9));
      text.push_back(' ');
      if (pos > 0) d.push(delta::Op::retain(pos));
      d.push(delta::Op::insert(text));
      break;
    }
    case MacroOp::kDeleteSentence: {
      const Span span = pick_sentence();
      // Keep the document non-empty.
      if (span.length >= doc_.size()) {
        return step(MacroOp::kReplaceSentence);
      }
      if (span.start > 0) d.push(delta::Op::retain(span.start));
      d.push(delta::Op::erase(span.length));
      break;
    }
  }
  doc_ = d.apply(doc_);
  return d;
}

delta::Delta SentenceEditor::step_mixed() {
  const std::uint64_t roll = rng_->below(3);
  return step(roll == 0   ? MacroOp::kReplaceSentence
              : roll == 1 ? MacroOp::kInsertSentence
                          : MacroOp::kDeleteSentence);
}

TypingSession::TypingSession(std::string document, RandomSource* rng)
    : doc_(std::move(document)), cursor_(doc_.size()), rng_(rng) {
  if (rng_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "TypingSession: null rng");
  }
}

delta::Delta TypingSession::keystroke() {
  delta::Delta d;
  const std::uint64_t roll = rng_->below(100);
  if (roll < 80 || doc_.empty()) {
    // Insert a character at the cursor.
    static constexpr char kKeys[] = "abcdefghijklmnopqrstuvwxyz      ,.";
    const char ch = kKeys[rng_->below(sizeof(kKeys) - 1)];
    if (cursor_ > 0) d.push(delta::Op::retain(cursor_));
    d.push(delta::Op::insert(std::string(1, ch)));
    doc_ = d.apply(doc_);
    ++cursor_;
  } else if (roll < 92 && cursor_ > 0) {
    // Backspace.
    if (cursor_ > 1) d.push(delta::Op::retain(cursor_ - 1));
    d.push(delta::Op::erase(1));
    doc_ = d.apply(doc_);
    --cursor_;
  } else {
    // Cursor jump: no content change, empty delta.
    cursor_ = rng_->below(doc_.size() + 1);
  }
  return d;
}

delta::Delta covert_ord_delta(const std::string& doc, std::size_t pos,
                              char visible_char, char secret_char) {
  if (pos > doc.size()) {
    throw Error(ErrorCode::kInvalidArgument, "covert_ord_delta: bad position");
  }
  const int ord = (secret_char | 0x20) - 'a' + 1;  // Ord in 1..26
  if (ord < 1 || ord > 26) {
    throw Error(ErrorCode::kInvalidArgument,
                "covert_ord_delta: secret must be a letter");
  }
  const std::size_t k = static_cast<std::size_t>(ord);
  if (pos + k > doc.size()) {
    throw Error(ErrorCode::kInvalidArgument,
                "covert_ord_delta: not enough characters after position");
  }
  // Delete Ord(q) original characters and re-insert them unchanged along
  // with the visible character: the net effect is a single insert, but the
  // run lengths leak Ord(q). Character-by-character ops maximise the
  // pattern's visibility, as in the paper's example.
  delta::Delta d;
  if (pos > 0) d.push(delta::Op::retain(pos));
  for (std::size_t i = 0; i < k; ++i) d.push(delta::Op::erase(1));
  d.push(delta::Op::insert(std::string(1, visible_char)));
  for (std::size_t i = 0; i < k; ++i) {
    d.push(delta::Op::insert(std::string(1, doc[pos + i])));
  }
  return d;
}

}  // namespace privedit::workload
