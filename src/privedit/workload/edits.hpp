#pragma once
// Edit-session generators.
//
// SentenceEditor drives the macro-benchmark workload (§VII-C): each test
// case replaces an existing sentence, or inserts/deletes a sentence (or
// group of sentences), expressed as a delta against the current document.
//
// TypingSession models a user typing: bursts of character inserts at a
// cursor, occasional backspaces and cursor jumps — the workload under
// which incremental encryption must win.
//
// covert_ord_delta reproduces the §VI-B malicious-client example: when the
// user types character q, the client deletes Ord(q) original characters
// one op at a time and re-inserts them unchanged around the real insert.
// The visible effect is a single typed character; the op pattern smuggles
// Ord(q) to anyone who can see the (encrypted) delta's shape.

#include <string>

#include "privedit/delta/delta.hpp"
#include "privedit/util/random.hpp"

namespace privedit::workload {

/// Kinds of macro-benchmark operations (the rows of Fig 5 / Fig 8).
enum class MacroOp {
  kReplaceSentence,
  kInsertSentence,
  kDeleteSentence,
};

class SentenceEditor {
 public:
  SentenceEditor(std::string document, RandomSource* rng);

  const std::string& document() const { return doc_; }

  /// Generates one operation as a delta against the current document and
  /// applies it locally. Keeps the document non-empty.
  delta::Delta step(MacroOp op);

  /// Mixed workload: replace/insert/delete with the given weights.
  delta::Delta step_mixed();

 private:
  struct Span {
    std::size_t start;
    std::size_t length;
  };
  /// Picks a sentence-ish span ending at a period (or the whole doc tail).
  Span pick_sentence() const;

  std::string doc_;
  RandomSource* rng_;
};

class TypingSession {
 public:
  TypingSession(std::string document, RandomSource* rng);

  const std::string& document() const { return doc_; }
  std::size_t cursor() const { return cursor_; }

  /// One keystroke: mostly inserts at the cursor, sometimes backspace,
  /// sometimes a cursor jump (which produces an empty delta).
  delta::Delta keystroke();

 private:
  std::string doc_;
  std::size_t cursor_ = 0;
  RandomSource* rng_;
};

/// The §VI-B covert encoding of `secret_char` as an op pattern at `pos`.
/// Applying the delta to `doc` inserts exactly one character, but the wire
/// form leaks Ord(secret_char) through the lengths of the insert/delete
/// runs.
delta::Delta covert_ord_delta(const std::string& doc, std::size_t pos,
                              char visible_char, char secret_char);

}  // namespace privedit::workload
