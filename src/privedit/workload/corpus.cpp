#include "privedit/workload/corpus.hpp"

namespace privedit::workload {
namespace {

constexpr const char* kWords[] = {
    "the",      "quick",   "brown",   "fox",     "jumps",    "over",
    "lazy",     "dog",     "cloud",   "service", "document", "editing",
    "private",  "secure",  "content", "server",  "client",   "browser",
    "update",   "delta",   "cipher",  "block",   "nonce",    "random",
    "password", "key",     "user",    "data",    "storage",  "network",
    "protocol", "message", "request", "response", "session", "editor",
    "word",     "text",    "page",    "line",    "letter",   "draft",
    "note",     "memo",    "report",  "paper",   "study",    "result",
    "time",     "space",   "cost",    "value",   "system",   "design",
    "model",    "threat",  "attack",  "defense", "channel",  "secret",
    "public",   "hidden",  "visible", "trusted", "provider", "account",
    "history",  "version", "change",  "insert",  "delete",   "replace",
    "search",   "find",    "share",   "work",    "write",    "read",
    "open",     "close",   "save",    "load",    "send",     "receive",
    "small",    "large",   "fast",    "slow",    "early",    "late",
    "first",    "second",  "third",   "final",   "whole",    "partial",
    "simple",   "complex", "useful",  "common",  "typical",  "general"};

constexpr std::size_t kWordCount = sizeof(kWords) / sizeof(kWords[0]);

}  // namespace

std::string random_word(RandomSource& rng) {
  return kWords[rng.below(kWordCount)];
}

std::string random_sentence(RandomSource& rng, std::size_t words) {
  std::string out;
  for (std::size_t i = 0; i < words; ++i) {
    std::string w = random_word(rng);
    if (i == 0 && !w.empty()) {
      w[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(w[0])));
    }
    if (i > 0) out.push_back(' ');
    out += w;
  }
  out.push_back('.');
  return out;
}

std::string random_document(RandomSource& rng, std::size_t min_chars) {
  std::string out;
  while (out.size() < min_chars) {
    if (!out.empty()) out.push_back(' ');
    out += random_sentence(rng, 4 + rng.below(9));
  }
  return out;
}

std::string random_string(RandomSource& rng, std::size_t len) {
  static constexpr char kPrintable[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,;:!?";
  constexpr std::size_t kAlphabet = sizeof(kPrintable) - 1;
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kPrintable[rng.below(kAlphabet)]);
  }
  return out;
}

RandomPair random_pair(RandomSource& rng, std::size_t min_len,
                       std::size_t max_len) {
  RandomPair pair;
  pair.before = random_string(rng, rng.between(min_len, max_len));
  pair.after = random_string(rng, rng.between(min_len, max_len));
  return pair;
}

}  // namespace privedit::workload
