#include "privedit/util/urlencode.hpp"

#include "privedit/util/error.hpp"

namespace privedit {
namespace {

bool is_unreserved(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_' ||
         c == '~';
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

constexpr char kHexDigits[] = "0123456789ABCDEF";

}  // namespace

std::string percent_encode(std::string_view s) {
  std::string out;
  out.reserve(s.size() + s.size() / 2);
  for (char c : s) {
    if (is_unreserved(c)) {
      out.push_back(c);
    } else {
      auto b = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(kHexDigits[b >> 4]);
      out.push_back(kHexDigits[b & 0xf]);
    }
  }
  return out;
}

std::string percent_decode(std::string_view s, bool plus_as_space) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '%') {
      if (i + 2 >= s.size()) {
        throw ParseError("percent_decode: truncated escape");
      }
      int hi = hex_value(s[i + 1]);
      int lo = hex_value(s[i + 2]);
      if (hi < 0 || lo < 0) {
        throw ParseError("percent_decode: invalid escape");
      }
      out.push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else if (plus_as_space && c == '+') {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

FormData FormData::parse(std::string_view body) {
  FormData form;
  if (body.empty()) return form;
  std::size_t pos = 0;
  while (pos <= body.size()) {
    std::size_t amp = body.find('&', pos);
    std::string_view pair = (amp == std::string_view::npos)
                                ? body.substr(pos)
                                : body.substr(pos, amp - pos);
    if (!pair.empty()) {
      std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        form.add(percent_decode(pair, /*plus_as_space=*/true), "");
      } else {
        form.add(percent_decode(pair.substr(0, eq), true),
                 percent_decode(pair.substr(eq + 1), true));
      }
    }
    if (amp == std::string_view::npos) break;
    pos = amp + 1;
  }
  return form;
}

std::string FormData::encode() const {
  std::string out;
  bool first = true;
  for (const auto& [key, value] : fields_) {
    if (!first) out.push_back('&');
    first = false;
    out += percent_encode(key);
    out.push_back('=');
    out += percent_encode(value);
  }
  return out;
}

void FormData::add(std::string key, std::string value) {
  fields_.emplace_back(std::move(key), std::move(value));
}

std::optional<std::string> FormData::get(std::string_view key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

bool FormData::contains(std::string_view key) const {
  return get(key).has_value();
}

void FormData::set(std::string_view key, std::string value) {
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  add(std::string(key), std::move(value));
}

std::size_t FormData::remove(std::string_view key) {
  std::size_t removed = 0;
  std::erase_if(fields_, [&](const auto& kv) {
    if (kv.first == key) {
      ++removed;
      return true;
    }
    return false;
  });
  return removed;
}

}  // namespace privedit
