#pragma once
// Error taxonomy for the privedit library.
//
// Exceptions are used for contract violations and for security-relevant
// failures (integrity check failed, ciphertext malformed) that callers must
// not be able to ignore silently.

#include <stdexcept>
#include <string>
#include <string_view>

namespace privedit {

enum class ErrorCode {
  kInvalidArgument,   // caller broke a precondition
  kParse,             // malformed input (delta, http, encoding, container)
  kCrypto,            // key/entropy/cipher misuse
  kIntegrity,         // authenticated decryption failed — possible tampering
  kRollback,          // server presented an older/forked document state
  kFork,              // server presented a history that diverges from ours
  kEquivocation,      // server showed different histories to different clients
  kProtocol,          // cloud-service protocol violation
  kState,             // object used in an invalid state
  kStorage,           // disk I/O failed (carries errno; see StorageError)
  kUnsupported,       // feature intentionally not available (e.g. blocked)
};

/// Human-readable name of an ErrorCode ("integrity", "parse", ...).
std::string_view error_code_name(ErrorCode code);

class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(std::string(error_code_name(code)) + ": " + what),
        code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Thrown when an authenticated scheme detects tampering. Deliberately a
/// distinct type: callers must treat it differently from parse errors.
class IntegrityError : public Error {
 public:
  explicit IntegrityError(const std::string& what)
      : Error(ErrorCode::kIntegrity, what) {}

 protected:
  IntegrityError(ErrorCode code, const std::string& what)
      : Error(code, what) {}
};

/// Thrown when the server presents a document state *older* than one it
/// already acknowledged (or a different state at the same revision) — the
/// §II rollback/subpoena-restore attack. A kind of integrity failure
/// (catch sites for IntegrityError see it), but with a distinct code so
/// the UI can say "your provider is serving stale data", not "corrupt".
class RollbackError : public IntegrityError {
 public:
  explicit RollbackError(const std::string& what)
      : IntegrityError(ErrorCode::kRollback, what) {}
};

/// Thrown when the server's revision history *diverges* from the chain
/// this client committed: the served chain disagrees with our own head at
/// a revision we produced or verified. Unlike a rollback (older-but-ours
/// state), a fork means the server substituted somebody's history.
class ForkError : public IntegrityError {
 public:
  explicit ForkError(const std::string& what)
      : IntegrityError(ErrorCode::kFork, what) {}
};

/// Thrown when cross-client witness exchange proves the server showed two
/// clients incompatible histories for the same document (SUNDR-style
/// fork/equivocation). The strongest finding: it implicates the server,
/// not the storage medium, so callers should stop trusting the endpoint
/// rather than attempt repair.
class EquivocationError : public IntegrityError {
 public:
  explicit EquivocationError(const std::string& what)
      : IntegrityError(ErrorCode::kEquivocation, what) {}
};

/// Thrown when a storage path (write/fsync/rename/open) fails at the OS
/// level. Carries the errno so scrub/repair machinery can distinguish
/// transient faults (ENOSPC clears when space is freed) from media faults
/// (EIO means the bytes may be gone — repair from a replica, don't retry).
class StorageError : public Error {
 public:
  StorageError(const std::string& what, int sys_errno);

  int sys_errno() const noexcept { return errno_; }

  /// True when retrying the same operation later can plausibly succeed
  /// without repairing from elsewhere (ENOSPC, EDQUOT, EINTR, EAGAIN).
  /// EIO and friends are media faults: the store itself needs repair.
  bool transient() const noexcept;

 private:
  int errno_;
};

class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what)
      : Error(ErrorCode::kParse, what) {}
};

class CryptoError : public Error {
 public:
  explicit CryptoError(const std::string& what)
      : Error(ErrorCode::kCrypto, what) {}
};

class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what)
      : Error(ErrorCode::kProtocol, what) {}
};

}  // namespace privedit
