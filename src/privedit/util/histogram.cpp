#include "privedit/util/histogram.hpp"

#include <algorithm>
#include <bit>

namespace privedit {

std::size_t LatencyHistogram::bucket_of(std::uint64_t value) {
  if (value < (1u << kSubBits)) return static_cast<std::size_t>(value);
  // Octave = position of the highest set bit; sub-bucket = the kSubBits
  // bits right below it. Monotone in `value`, so percentile scans work.
  const int high = 63 - std::countl_zero(value);
  const std::uint64_t sub =
      (value >> (high - static_cast<int>(kSubBits))) & ((1u << kSubBits) - 1);
  return (static_cast<std::size_t>(high) << kSubBits) +
         static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::bucket_upper(std::size_t index) {
  if (index < (1u << kSubBits)) return index;
  const std::size_t high = index >> kSubBits;
  const std::uint64_t sub = index & ((1u << kSubBits) - 1);
  // Upper edge of the sub-bucket range (inclusive).
  return ((1ULL << high) +
          ((sub + 1) << (high - kSubBits))) - 1;
}

void LatencyHistogram::record(std::uint64_t value) {
  ++buckets_[bucket_of(value)];
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

std::uint64_t LatencyHistogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based; q=1 must land on the last sample.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return std::min(bucket_upper(i), max_);
  }
  return max_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

std::string LatencyHistogram::to_json() const {
  std::string out = "{";
  out += "\"count\":" + std::to_string(count_);
  out += ",\"mean_us\":" + std::to_string(static_cast<std::uint64_t>(mean()));
  out += ",\"p50_us\":" + std::to_string(percentile(0.50));
  out += ",\"p90_us\":" + std::to_string(percentile(0.90));
  out += ",\"p99_us\":" + std::to_string(percentile(0.99));
  out += ",\"p999_us\":" + std::to_string(percentile(0.999));
  out += ",\"max_us\":" + std::to_string(max_);
  out += "}";
  return out;
}

}  // namespace privedit
