#pragma once
// Crash-consistent file replacement: write temp, fsync temp, rename over
// target, fsync the containing directory. The classic sequence — skipping
// any step reintroduces a power-loss window: an un-fsync'd temp can be
// empty after the rename survives (data loss), and an un-fsync'd directory
// can forget the rename itself (acknowledged write lost).
//
// Every step is bracketed by a CrashPoints::reach so recovery tests can
// kill the "machine" at each one; the names are "<prefix>.created",
// "<prefix>.torn" (mid-write — the torn-file case), "<prefix>.before_fsync",
// "<prefix>.before_rename" and "<prefix>.before_dirsync".

#include <string>
#include <string_view>

namespace privedit {

/// Atomically and durably replaces `path` with `bytes`. Throws
/// StorageError (carrying the errno, so callers can tell ENOSPC from EIO)
/// on I/O failure and CrashError when an armed crash point fires — in
/// which case the on-disk state is exactly what a power loss at that step
/// would leave.
void durable_replace_file(const std::string& path, std::string_view bytes,
                          const std::string& crash_prefix);

/// fsync() the directory containing `path`, making a completed rename in
/// it durable. Throws StorageError on failure.
void fsync_parent_dir(const std::string& path);

/// Removes every stale "*.tmp" left in `directory` by a crash between
/// temp-write and rename (such a temp was never acknowledged, so recovery
/// is simply discarding it). Returns the number of files swept. The sweep
/// itself is a durable-path step: "<crash_prefix>.sweep" fires before each
/// removal, and a crash mid-sweep must leave the directory loadable — the
/// remaining temps are re-swept on the next open. Directory listing/unlink
/// failures raise StorageError.
std::size_t sweep_stale_tmp(const std::string& directory,
                            const std::string& crash_prefix);

}  // namespace privedit
