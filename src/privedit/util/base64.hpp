#pragma once
// RFC 4648 Base64 and base64url. Provided alongside Base32 so the blow-up
// benches can compare encoding overheads (Fig 7 discussion).

#include <string>
#include <string_view>

#include "privedit/util/bytes.hpp"

namespace privedit {

/// Encodes bytes as standard Base64 ('+', '/', '=' padding).
std::string base64_encode(ByteView data, bool pad = true);

/// Encodes bytes as base64url ('-', '_', no padding by default).
std::string base64url_encode(ByteView data, bool pad = false);

/// Decodes either alphabet (padding optional). Throws ParseError.
Bytes base64_decode(std::string_view text);

}  // namespace privedit
