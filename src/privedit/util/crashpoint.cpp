#include "privedit/util/crashpoint.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>

namespace privedit {
namespace {

struct State {
  std::mutex mu;
  std::string armed;          // empty = disarmed
  int countdown = 0;          // fires when it reaches zero
  std::vector<std::string> seen;  // first-seen order

  State() {
    // PRIVEDIT_CRASHPOINT="name" or "name:N" arms from the environment so
    // the CLI and benches can be crashed without code changes.
    if (const char* env = std::getenv("PRIVEDIT_CRASHPOINT")) {
      std::string spec(env);
      const std::size_t colon = spec.rfind(':');
      int n = 1;
      if (colon != std::string::npos) {
        try {
          n = std::stoi(spec.substr(colon + 1));
          spec.resize(colon);
        } catch (...) {
          // no numeric suffix — the whole string is the point name
        }
      }
      armed = spec;
      countdown = n > 0 ? n : 1;
    }
  }
};

State& state() {
  static State s;
  return s;
}

}  // namespace

void CrashPoints::reach(const std::string& name) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (std::find(s.seen.begin(), s.seen.end(), name) == s.seen.end()) {
    s.seen.push_back(name);
  }
  if (s.armed == name && --s.countdown <= 0) {
    s.armed.clear();  // a machine only loses power once per arming
    throw CrashError(name);
  }
}

void CrashPoints::arm(const std::string& name, int countdown) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.armed = name;
  s.countdown = countdown > 0 ? countdown : 1;
}

void CrashPoints::disarm() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.armed.clear();
  s.countdown = 0;
}

std::vector<std::string> CrashPoints::seen() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.seen;
}

void CrashPoints::clear_seen() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.seen.clear();
}

}  // namespace privedit
