#include "privedit/util/base64.hpp"

#include <array>

#include "privedit/util/error.hpp"

namespace privedit {
namespace {

constexpr char kStd[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
constexpr char kUrl[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

std::array<int, 256> build_reverse_table() {
  std::array<int, 256> t{};
  t.fill(-1);
  for (int i = 0; i < 64; ++i) {
    t[static_cast<unsigned char>(kStd[i])] = i;
    t[static_cast<unsigned char>(kUrl[i])] = i;
  }
  return t;
}

const std::array<int, 256>& reverse_table() {
  static const std::array<int, 256> t = build_reverse_table();
  return t;
}

std::string encode_with(ByteView data, const char* alphabet, bool pad) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                      (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                      data[i + 2];
    out.push_back(alphabet[(v >> 18) & 0x3f]);
    out.push_back(alphabet[(v >> 12) & 0x3f]);
    out.push_back(alphabet[(v >> 6) & 0x3f]);
    out.push_back(alphabet[v & 0x3f]);
    i += 3;
  }
  std::size_t rem = data.size() - i;
  if (rem == 1) {
    std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(alphabet[(v >> 18) & 0x3f]);
    out.push_back(alphabet[(v >> 12) & 0x3f]);
    if (pad) out.append("==");
  } else if (rem == 2) {
    std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                      (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(alphabet[(v >> 18) & 0x3f]);
    out.push_back(alphabet[(v >> 12) & 0x3f]);
    out.push_back(alphabet[(v >> 6) & 0x3f]);
    if (pad) out.push_back('=');
  }
  return out;
}

}  // namespace

std::string base64_encode(ByteView data, bool pad) {
  return encode_with(data, kStd, pad);
}

std::string base64url_encode(ByteView data, bool pad) {
  return encode_with(data, kUrl, pad);
}

Bytes base64_decode(std::string_view text) {
  while (!text.empty() && text.back() == '=') text.remove_suffix(1);

  Bytes out;
  out.reserve(text.size() * 3 / 4 + 1);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (char c : text) {
    int v = reverse_table()[static_cast<unsigned char>(c)];
    if (v < 0) {
      throw ParseError("base64_decode: invalid character");
    }
    buffer = (buffer << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      out.push_back(static_cast<std::uint8_t>((buffer >> (bits - 8)) & 0xff));
      bits -= 8;
    }
  }
  if (bits > 0 && (buffer & ((1u << bits) - 1)) != 0) {
    throw ParseError("base64_decode: nonzero trailing bits");
  }
  return out;
}

}  // namespace privedit
