#include "privedit/util/random.hpp"

#include <fstream>

#include "privedit/util/error.hpp"

namespace privedit {

std::uint64_t RandomSource::next_u64() {
  std::uint8_t buf[8];
  fill(buf);
  return load_u64be(buf);
}

std::uint64_t RandomSource::below(std::uint64_t bound) {
  if (bound == 0) {
    throw Error(ErrorCode::kInvalidArgument, "RandomSource::below: bound 0");
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

std::uint64_t RandomSource::between(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) {
    throw Error(ErrorCode::kInvalidArgument, "RandomSource::between: lo > hi");
  }
  if (lo == 0 && hi == UINT64_MAX) return next_u64();
  return lo + below(hi - lo + 1);
}

Bytes RandomSource::bytes(std::size_t n) {
  Bytes out(n);
  fill(out);
  return out;
}

bool RandomSource::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  // 53 bits of precision is plenty for workload decisions.
  const double u =
      static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  return u < p;
}

void OsEntropy::fill(MutByteView out) {
  static thread_local std::ifstream urandom("/dev/urandom",
                                            std::ios::in | std::ios::binary);
  if (!urandom.good()) {
    throw CryptoError("OsEntropy: cannot open /dev/urandom");
  }
  urandom.read(reinterpret_cast<char*>(out.data()),
               static_cast<std::streamsize>(out.size()));
  if (urandom.gcount() != static_cast<std::streamsize>(out.size())) {
    throw CryptoError("OsEntropy: short read from /dev/urandom");
  }
}

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::fill(MutByteView out) {
  std::size_t i = 0;
  while (i < out.size()) {
    std::uint64_t v = next();
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
  }
}

}  // namespace privedit
