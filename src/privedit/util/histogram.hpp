#pragma once
// LatencyHistogram — fixed-footprint log-bucketed histogram for latency
// and availability accounting.
//
// The degraded-mode subsystem needs cheap percentiles in three places: the
// replication layer's per-replica health scores (EWMA + histogram), the
// outage bench's availability/p99 report, and operator counters. Buckets
// are power-of-two ranges split into 4 linear sub-buckets, so the relative
// quantization error is bounded by ~12.5% at any magnitude while the whole
// histogram stays a flat 256-entry array — no allocation on the record
// path, trivially mergeable across runs.

#include <array>
#include <cstdint>
#include <string>

namespace privedit {

class LatencyHistogram {
 public:
  /// Records one sample (microseconds by convention, but unit-agnostic).
  void record(std::uint64_t value);

  std::uint64_t count() const { return count_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value at quantile q in [0, 1] (upper bound of the containing bucket;
  /// exact for the recorded max). 0 when empty.
  std::uint64_t percentile(double q) const;

  /// Accumulates another histogram into this one.
  void merge(const LatencyHistogram& other);

  void reset();

  /// {"count":N,"mean_us":...,"p50_us":...,"p90_us":...,"p99_us":...,
  ///  "p999_us":...,"max_us":N} — the shape the bench JSON embeds.
  std::string to_json() const;

 private:
  static constexpr std::size_t kSubBits = 2;   // 4 sub-buckets per octave
  static constexpr std::size_t kBuckets = (64 << kSubBits);

  static std::size_t bucket_of(std::uint64_t value);
  static std::uint64_t bucket_upper(std::size_t index);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace privedit
