#include "privedit/util/error.hpp"

#include <cerrno>
#include <cstring>

namespace privedit {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kParse:
      return "parse";
    case ErrorCode::kCrypto:
      return "crypto";
    case ErrorCode::kIntegrity:
      return "integrity";
    case ErrorCode::kRollback:
      return "rollback";
    case ErrorCode::kFork:
      return "fork";
    case ErrorCode::kEquivocation:
      return "equivocation";
    case ErrorCode::kProtocol:
      return "protocol";
    case ErrorCode::kState:
      return "state";
    case ErrorCode::kStorage:
      return "storage";
    case ErrorCode::kUnsupported:
      return "unsupported";
  }
  return "unknown";
}

StorageError::StorageError(const std::string& what, int sys_errno)
    : Error(ErrorCode::kStorage,
            what + ": " + std::strerror(sys_errno) + " (errno " +
                std::to_string(sys_errno) + ")"),
      errno_(sys_errno) {}

bool StorageError::transient() const noexcept {
  switch (errno_) {
    case ENOSPC:
    case EDQUOT:
    case EINTR:
    case EAGAIN:
    case EBUSY:
      return true;
    default:
      return false;  // EIO, EROFS, EBADF, ENOTDIR, ... — not retryable
  }
}

}  // namespace privedit
