#include "privedit/util/error.hpp"

namespace privedit {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kParse:
      return "parse";
    case ErrorCode::kCrypto:
      return "crypto";
    case ErrorCode::kIntegrity:
      return "integrity";
    case ErrorCode::kRollback:
      return "rollback";
    case ErrorCode::kProtocol:
      return "protocol";
    case ErrorCode::kState:
      return "state";
    case ErrorCode::kUnsupported:
      return "unsupported";
  }
  return "unknown";
}

}  // namespace privedit
