#pragma once
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the framing
// checksum for the write-ahead edit journal. Not a cryptographic MAC: the
// journal lives on the *trusted* side of the extension boundary, so the
// checksum only needs to detect torn writes and bit rot, never an
// adversary. Integrity against adversaries stays with the RPC scheme.

#include <cstdint>

#include "privedit/util/bytes.hpp"

namespace privedit {

/// One-shot CRC-32 of `data`.
std::uint32_t crc32(ByteView data);

/// Streaming form: feed `crc` from a previous call (start with 0).
std::uint32_t crc32_update(std::uint32_t crc, ByteView data);

}  // namespace privedit
