#pragma once
// CrashPoints — deterministic power-loss injection for durability code.
//
// Durable-write paths (FileStore::put, the edit journal) call
// CrashPoints::reach("name") between every externally visible step: after
// the temp file is created, mid-write (leaving a torn file), before fsync,
// before rename, before the directory fsync. Tests arm one point and drive
// the workload; when the armed point is reached the process "loses power"
// — a CrashError is thrown and whatever bytes made it to disk stay exactly
// as they are. The test then rebuilds the stack on the same directory and
// asserts recovery: no acknowledged write lost, no torn state surfaced.
//
// Arming is programmatic (CrashPoints::arm) or via the environment
// (PRIVEDIT_CRASHPOINT="name" or "name:N" to crash on the Nth reach),
// so the CLI and benches can be crashed from the outside too. The
// registry also records every point reached, letting tests enumerate
// the crash matrix instead of hard-coding it.
//
// All state is behind one mutex: the durability paths are not hot (one
// reach() per fsync-bracketed step) and the suite runs under TSan.

#include <string>
#include <vector>

#include "privedit/util/error.hpp"

namespace privedit {

/// The simulated power loss. Deliberately NOT an IntegrityError or
/// ParseError: recovery tests must be able to tell "the machine died"
/// from "the data is bad".
class CrashError : public Error {
 public:
  explicit CrashError(const std::string& point)
      : Error(ErrorCode::kState, "simulated crash at " + point) {}
};

class CrashPoints {
 public:
  /// Marks a step in a durable-write path. Throws CrashError when `name`
  /// is the armed point and its countdown reaches zero.
  static void reach(const std::string& name);

  /// Arms `name` to crash on its `countdown`-th reach (1 = next reach).
  /// Only one point is armed at a time; re-arming replaces it.
  static void arm(const std::string& name, int countdown = 1);

  /// Clears the armed point (and forgets any pending countdown).
  static void disarm();

  /// Every distinct point reached since the last clear_seen(), in
  /// first-seen order — the crash matrix for exhaustive tests.
  static std::vector<std::string> seen();
  static void clear_seen();
};

}  // namespace privedit
