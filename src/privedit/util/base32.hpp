#pragma once
// RFC 4648 Base32. The paper's extension Base32-encodes ciphertext before
// placing it in form fields (Fig 2), because Base32 output is URL-safe and
// survives the editors' content pipelines unmodified.

#include <string>
#include <string_view>

#include "privedit/util/bytes.hpp"

namespace privedit {

/// Encodes bytes as RFC 4648 Base32 (uppercase A–Z2–7, '=' padding).
std::string base32_encode(ByteView data, bool pad = true);

/// Decodes Base32 (case-insensitive, padding optional).
/// Throws ParseError on invalid characters or impossible lengths.
Bytes base32_decode(std::string_view text);

}  // namespace privedit
