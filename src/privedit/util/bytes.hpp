#pragma once
// Basic byte-buffer vocabulary types and helpers shared by all modules.

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace privedit {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;
using MutByteView = std::span<std::uint8_t>;

/// Copies a text string into a byte buffer (no encoding conversion).
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Reinterprets a byte buffer as text (no encoding conversion).
inline std::string to_string(ByteView b) {
  return std::string(b.begin(), b.end());
}

/// Views a text string as bytes without copying.
inline ByteView as_bytes(std::string_view s) {
  return ByteView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

/// XORs `src` into `dst` element-wise; sizes must match.
void xor_into(MutByteView dst, ByteView src);

/// Returns a ^ b; sizes must match.
Bytes xor_bytes(ByteView a, ByteView b);

/// Appends `src` to `dst`.
inline void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Concatenates any number of byte views.
template <typename... Views>
Bytes concat(const Views&... views) {
  Bytes out;
  out.reserve((ByteView(views).size() + ...));
  (append(out, ByteView(views)), ...);
  return out;
}

/// Big-endian 64-bit store/load (used for nonces, lengths, counters).
void store_u64be(MutByteView out, std::uint64_t v);
std::uint64_t load_u64be(ByteView in);

/// Big-endian 32-bit store/load.
void store_u32be(MutByteView out, std::uint32_t v);
std::uint32_t load_u32be(ByteView in);

/// Best-effort zeroisation that the optimizer may not elide (for keys).
void secure_wipe(MutByteView buf);

/// Constant-time equality for secret-dependent comparisons (MACs, tags).
bool ct_equal(ByteView a, ByteView b);

}  // namespace privedit
