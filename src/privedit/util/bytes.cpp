#include "privedit/util/bytes.hpp"

#include <cassert>

#include "privedit/util/error.hpp"

namespace privedit {

void xor_into(MutByteView dst, ByteView src) {
  if (dst.size() != src.size()) {
    throw Error(ErrorCode::kInvalidArgument, "xor_into: size mismatch");
  }
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
}

Bytes xor_bytes(ByteView a, ByteView b) {
  if (a.size() != b.size()) {
    throw Error(ErrorCode::kInvalidArgument, "xor_bytes: size mismatch");
  }
  Bytes out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(a[i] ^ b[i]);
  }
  return out;
}

void store_u64be(MutByteView out, std::uint64_t v) {
  if (out.size() < 8) {
    throw Error(ErrorCode::kInvalidArgument, "store_u64be: buffer too small");
  }
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
}

std::uint64_t load_u64be(ByteView in) {
  if (in.size() < 8) {
    throw Error(ErrorCode::kInvalidArgument, "load_u64be: buffer too small");
  }
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | in[i];
  return v;
}

void store_u32be(MutByteView out, std::uint32_t v) {
  if (out.size() < 4) {
    throw Error(ErrorCode::kInvalidArgument, "store_u32be: buffer too small");
  }
  for (int i = 3; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
}

std::uint32_t load_u32be(ByteView in) {
  if (in.size() < 4) {
    throw Error(ErrorCode::kInvalidArgument, "load_u32be: buffer too small");
  }
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) v = (v << 8) | in[i];
  return v;
}

void secure_wipe(MutByteView buf) {
  // volatile pointer write defeats dead-store elimination on the
  // compilers we target; memset_s is not available on glibc.
  volatile std::uint8_t* p = buf.data();
  for (std::size_t i = 0; i < buf.size(); ++i) p[i] = 0;
}

bool ct_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  }
  return acc == 0;
}

}  // namespace privedit
