#pragma once
// Lowercase hexadecimal encoding/decoding.

#include <string>
#include <string_view>

#include "privedit/util/bytes.hpp"

namespace privedit {

/// Encodes bytes as lowercase hex ("deadbeef").
std::string hex_encode(ByteView data);

/// Decodes hex (either case). Throws ParseError on odd length or bad digit.
Bytes hex_decode(std::string_view hex);

}  // namespace privedit
