#include "privedit/util/crc32.hpp"

#include <array>

namespace privedit {
namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, ByteView data) {
  static const std::array<std::uint32_t, 256> kTable = make_table();
  crc = ~crc;
  for (std::uint8_t byte : data) {
    crc = kTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t crc32(ByteView data) { return crc32_update(0, data); }

}  // namespace privedit
