#include "privedit/util/crc32.hpp"

#include <array>
#include <cstddef>

namespace privedit {
namespace {

// Slicing-by-8 tables: table[0] is the classic bytewise CRC-32 table,
// table[k][i] advances a byte that sits k positions deeper in the message.
// Same polynomial (0xEDB88320, reflected) — bit-identical to the bytewise
// loop, ~8x the throughput. The audit layer CRCs the whole container per
// save (DESIGN.md §16), so this path is on the editing hot loop.
std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[k - 1][i];
      tables[k][i] = tables[0][prev & 0xFFu] ^ (prev >> 8);
    }
  }
  return tables;
}

inline std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, ByteView data) {
  static const std::array<std::array<std::uint32_t, 256>, 8> kTables =
      make_tables();
  const auto& t = kTables;
  crc = ~crc;
  const std::uint8_t* p = data.data();
  std::size_t len = data.size();
  while (len >= 8) {
    const std::uint32_t lo = crc ^ load_le32(p);
    const std::uint32_t hi = load_le32(p + 4);
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t crc32(ByteView data) { return crc32_update(0, data); }

}  // namespace privedit
