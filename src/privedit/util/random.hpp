#pragma once
// Randomness interface. All randomness in the library flows through
// RandomSource so that tests and benchmarks can inject a seeded generator
// and reproduce results bit-for-bit. Production crypto uses crypto::CtrDrbg
// (an AES-based DRBG implementing this interface) seeded from OsEntropy.

#include <cstdint>
#include <memory>

#include "privedit/util/bytes.hpp"

namespace privedit {

class RandomSource {
 public:
  virtual ~RandomSource() = default;

  /// Fills `out` with random bytes.
  virtual void fill(MutByteView out) = 0;

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform value in [0, bound) via rejection sampling; bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive; requires lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

  /// Random byte buffer of the given length.
  Bytes bytes(std::size_t n);

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);
};

/// Reads from the operating system entropy pool (/dev/urandom).
/// Throws CryptoError if the pool is unavailable.
class OsEntropy final : public RandomSource {
 public:
  void fill(MutByteView out) override;
};

/// xoshiro256** — fast, seedable, NOT cryptographic. For workload
/// generation, skip-list coin flips in tests, and latency jitter.
class Xoshiro256 final : public RandomSource {
 public:
  explicit Xoshiro256(std::uint64_t seed);

  void fill(MutByteView out) override;

 private:
  std::uint64_t next();
  std::uint64_t s_[4];
};

}  // namespace privedit
