#pragma once
// RFC 3986 percent-encoding and application/x-www-form-urlencoded handling.
// The Google Documents protocol carries document content and deltas inside
// form-encoded POST bodies, so faithful form handling is load-bearing: the
// mediator must decode, rewrite and re-encode fields without perturbing the
// surrounding control fields.

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace privedit {

/// Percent-encodes everything except RFC 3986 unreserved characters
/// (ALPHA / DIGIT / '-' / '.' / '_' / '~'). Mirrors JS encodeURIComponent
/// except that the latter also leaves !'()* unescaped; we escape them,
/// which every decoder accepts.
std::string percent_encode(std::string_view s);

/// Decodes %XX sequences. If `plus_as_space`, '+' decodes to ' ' (form
/// semantics). Throws ParseError on truncated/invalid escapes.
std::string percent_decode(std::string_view s, bool plus_as_space = false);

/// Ordered multimap of form fields. Order is preserved because the cloud
/// protocols are order-sensitive in practice and the mediator must not
/// reorder fields it does not understand.
class FormData {
 public:
  FormData() = default;

  /// Parses an application/x-www-form-urlencoded body.
  static FormData parse(std::string_view body);

  /// Serialises back to key=value&... with percent-encoding.
  std::string encode() const;

  void add(std::string key, std::string value);

  /// First value for key, if any.
  std::optional<std::string> get(std::string_view key) const;

  bool contains(std::string_view key) const;

  /// Replaces the first occurrence's value; adds the field if absent.
  void set(std::string_view key, std::string value);

  /// Removes all occurrences; returns how many were removed.
  std::size_t remove(std::string_view key);

  const std::vector<std::pair<std::string, std::string>>& fields() const {
    return fields_;
  }

  bool empty() const { return fields_.empty(); }
  std::size_t size() const { return fields_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace privedit
