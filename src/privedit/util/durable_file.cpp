#include "privedit/util/durable_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "privedit/util/crashpoint.hpp"
#include "privedit/util/error.hpp"

namespace privedit {
namespace {

[[noreturn]] void raise(const std::string& what) {
  throw Error(ErrorCode::kState, what + ": " + std::strerror(errno));
}

void write_all(int fd, const char* data, std::size_t len,
               const std::string& what) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      raise(what);
    }
    done += static_cast<std::size_t>(n);
  }
}

/// Closes `fd` on every exit path, including a CrashError unwinding.
struct FdGuard {
  int fd;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) raise("open directory " + dir);
  FdGuard guard{fd};
  if (::fsync(fd) != 0) raise("fsync directory " + dir);
}

void durable_replace_file(const std::string& path, std::string_view bytes,
                          const std::string& crash_prefix) {
  const std::string tmp = path + ".tmp";
  {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) raise("create " + tmp);
    FdGuard guard{fd};
    CrashPoints::reach(crash_prefix + ".created");
    // Two half-writes so a crash between them leaves a genuinely torn file.
    const std::size_t half = bytes.size() / 2;
    write_all(fd, bytes.data(), half, "write " + tmp);
    CrashPoints::reach(crash_prefix + ".torn");
    write_all(fd, bytes.data() + half, bytes.size() - half, "write " + tmp);
    CrashPoints::reach(crash_prefix + ".before_fsync");
    if (::fsync(fd) != 0) raise("fsync " + tmp);
  }
  CrashPoints::reach(crash_prefix + ".before_rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    raise("rename " + tmp + " -> " + path);
  }
  CrashPoints::reach(crash_prefix + ".before_dirsync");
  fsync_parent_dir(path);
}

}  // namespace privedit
