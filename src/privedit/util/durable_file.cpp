#include "privedit/util/durable_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "privedit/util/crashpoint.hpp"
#include "privedit/util/error.hpp"

namespace privedit {
namespace {

[[noreturn]] void raise(const std::string& what) {
  throw StorageError(what, errno);
}

void write_all(int fd, const char* data, std::size_t len,
               const std::string& what) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      raise(what);
    }
    done += static_cast<std::size_t>(n);
  }
}

/// Closes `fd` on every exit path, including a CrashError unwinding.
struct FdGuard {
  int fd;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) raise("open directory " + dir);
  FdGuard guard{fd};
  if (::fsync(fd) != 0) raise("fsync directory " + dir);
}

void durable_replace_file(const std::string& path, std::string_view bytes,
                          const std::string& crash_prefix) {
  const std::string tmp = path + ".tmp";
  {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) raise("create " + tmp);
    FdGuard guard{fd};
    CrashPoints::reach(crash_prefix + ".created");
    // Two half-writes so a crash between them leaves a genuinely torn file.
    const std::size_t half = bytes.size() / 2;
    write_all(fd, bytes.data(), half, "write " + tmp);
    CrashPoints::reach(crash_prefix + ".torn");
    write_all(fd, bytes.data() + half, bytes.size() - half, "write " + tmp);
    CrashPoints::reach(crash_prefix + ".before_fsync");
    if (::fsync(fd) != 0) raise("fsync " + tmp);
  }
  CrashPoints::reach(crash_prefix + ".before_rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    raise("rename " + tmp + " -> " + path);
  }
  CrashPoints::reach(crash_prefix + ".before_dirsync");
  fsync_parent_dir(path);
}

std::size_t sweep_stale_tmp(const std::string& directory,
                            const std::string& crash_prefix) {
  namespace fs = std::filesystem;
  std::size_t swept = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".tmp") {
      continue;
    }
    // One seam per removal: a crash here leaves this temp (and any later
    // ones) on disk, which the next open's sweep discards again — the
    // sweep is idempotent, so mid-sweep power loss is harmless.
    CrashPoints::reach(crash_prefix + ".sweep");
    if (::unlink(entry.path().c_str()) != 0 && errno != ENOENT) {
      raise("sweep " + entry.path().string());
    }
    ++swept;
  }
  if (ec) {
    errno = ec.value();
    raise("list " + directory);
  }
  return swept;
}

}  // namespace privedit
