#include "privedit/util/base32.hpp"

#include <array>

#include "privedit/util/error.hpp"

namespace privedit {
namespace {

constexpr char kAlphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ234567";

std::array<int, 256> build_reverse_table() {
  std::array<int, 256> t{};
  t.fill(-1);
  for (int i = 0; i < 32; ++i) {
    t[static_cast<unsigned char>(kAlphabet[i])] = i;
    // accept lowercase too
    t[static_cast<unsigned char>(kAlphabet[i] | 0x20)] = i;
  }
  return t;
}

const std::array<int, 256>& reverse_table() {
  static const std::array<int, 256> t = build_reverse_table();
  return t;
}

}  // namespace

std::string base32_encode(ByteView data, bool pad) {
  std::string out;
  out.reserve((data.size() * 8 + 4) / 5 + 8);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (std::uint8_t b : data) {
    buffer = (buffer << 8) | b;
    bits += 8;
    while (bits >= 5) {
      out.push_back(kAlphabet[(buffer >> (bits - 5)) & 0x1f]);
      bits -= 5;
    }
  }
  if (bits > 0) {
    out.push_back(kAlphabet[(buffer << (5 - bits)) & 0x1f]);
  }
  if (pad) {
    while (out.size() % 8 != 0) out.push_back('=');
  }
  return out;
}

Bytes base32_decode(std::string_view text) {
  // Strip trailing padding.
  while (!text.empty() && text.back() == '=') text.remove_suffix(1);

  Bytes out;
  out.reserve(text.size() * 5 / 8 + 1);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (char c : text) {
    int v = reverse_table()[static_cast<unsigned char>(c)];
    if (v < 0) {
      throw ParseError("base32_decode: invalid character");
    }
    buffer = (buffer << 5) | static_cast<std::uint32_t>(v);
    bits += 5;
    if (bits >= 8) {
      out.push_back(static_cast<std::uint8_t>((buffer >> (bits - 8)) & 0xff));
      bits -= 8;
    }
  }
  // Leftover bits must be zero padding produced by the encoder; nonzero
  // leftovers indicate truncation or corruption.
  if (bits > 0 && (buffer & ((1u << bits) - 1)) != 0) {
    throw ParseError("base32_decode: nonzero trailing bits");
  }
  return out;
}

}  // namespace privedit
